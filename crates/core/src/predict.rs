//! Online hint prediction: oracle-free [`HintSource`]s.
//!
//! Everything else in this crate consumes the paper's *disclosed* hints —
//! the application announces its future accesses, and the oracle indexes
//! them with perfect knowledge. A [`HintSource`] decouples hint delivery
//! from that omniscience: it observes the demand stream as it arrives and
//! emits *predicted* future blocks, which the engine materializes into the
//! same compact-index [`Oracle`] the policies already consume. Fixed
//! horizon, aggressive, and forestall then run unchanged on predicted
//! hints, and the gap between their stall time here and under disclosed
//! hints prices "not knowing the future" directly.
//!
//! Three predictors are provided, in rough order of model power:
//!
//! * [`SequentialPredictor`] — stride run detection, the classic
//!   readahead heuristic: after seeing the same inter-block delta twice,
//!   extrapolate it forward.
//! * [`MarkovPredictor`] — a first-order next-block model: count
//!   successors per block and walk the argmax chain forward.
//! * [`MithrilPredictor`] — a MITHRIL-style sporadic-association miner:
//!   count co-occurrences at distances *beyond* the immediate successor,
//!   catching recurring patterns the Markov chain's one-step view misses.
//!
//! # Causality and determinism
//!
//! Predictions are produced by an **epoch pre-pass**
//! ([`predicted_oracle`]): at each epoch boundary `p` the source, having
//! observed exactly the references before `p`, predicts the next epoch's
//! blocks; then the epoch's true references are fed to `observe`. Every
//! prediction therefore uses only information available before the
//! predicted positions — the source never peeks — while the materialized
//! oracle stays an immutable pre-computed structure, so runs remain
//! byte-identical at any sweep thread count. A `rollout` must be a pure
//! function of the observation history (the `&mut self` receiver permits
//! internal caching, never nondeterminism).
//!
//! # Wrong predictions are kept
//!
//! A misprediction is *not* filtered out: the engine builds the oracle
//! from the predicted `(position, block)` pairs as a self-consistent
//! alternative future, so policies prefetch the predicted block and pay
//! the wasted-bandwidth cost a real system would. A hint that is not
//! consumed at its predicted position simply lapses: the true reference
//! at that position resolves through the demand path (the true trace, not
//! the predictions, drives the reference stream), so progress never
//! depends on prediction accuracy.

use crate::oracle::Oracle;
use parcache_disk::Layout;
use parcache_trace::Trace;
use parcache_types::BlockId;
use std::collections::HashMap;

/// A source of (possibly predicted) hints: observes the demand stream and
/// emits expected future blocks.
///
/// Contract: `rollout` must be a deterministic pure function of the
/// sequence of blocks passed to `observe` so far. It may emit *fewer*
/// than `k` blocks — including none at all — when it has nothing
/// confident to say; an exhausted or silent source simply leaves the
/// corresponding positions undisclosed (they surface as demand misses),
/// it is never treated as "everything is disclosed".
pub trait HintSource {
    /// Short stable name ("oracle", "seq", "markov", "mithril").
    fn name(&self) -> &'static str;

    /// Feeds one demand reference to the model.
    fn observe(&mut self, block: BlockId);

    /// Appends up to `k` predicted next blocks to `out`, in positional
    /// order starting immediately after the last observed reference.
    fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>);
}

/// The disclosed-hint path expressed as a [`HintSource`]: replays the
/// application's own future. A [`predicted_oracle`] pre-pass over it
/// reproduces the full-knowledge oracle exactly (pinned by test), which
/// is what makes the trait a refactoring of the existing path rather
/// than a parallel implementation.
#[derive(Debug)]
pub struct OracleHints {
    future: Vec<BlockId>,
    cursor: usize,
}

impl OracleHints {
    /// Wraps a trace's disclosed access sequence.
    pub fn new(trace: &Trace) -> OracleHints {
        OracleHints {
            future: trace.requests.iter().map(|r| r.block).collect(),
            cursor: 0,
        }
    }
}

impl HintSource for OracleHints {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn observe(&mut self, block: BlockId) {
        debug_assert_eq!(
            self.future.get(self.cursor),
            Some(&block),
            "disclosed hints replay the trace itself"
        );
        self.cursor += 1;
    }

    fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>) {
        let end = self.cursor.saturating_add(k).min(self.future.len());
        out.extend_from_slice(&self.future[self.cursor..end]);
    }
}

/// Consecutive equal inter-block deltas required before the sequential
/// predictor commits to a stride (two deltas = three references in
/// arithmetic progression).
const SEQ_MIN_RUN: u32 = 2;

/// Stride run detection: tracks the delta between consecutive references
/// and, once the same nonzero delta repeats [`SEQ_MIN_RUN`] times,
/// extrapolates it forward. Exactly the shape of classic file-system
/// readahead, generalized to arbitrary strides.
#[derive(Debug, Default)]
pub struct SequentialPredictor {
    last: Option<u64>,
    /// Current inter-block delta (i128: a u64 difference always fits).
    stride: i128,
    /// Consecutive observations of `stride`.
    run: u32,
}

impl SequentialPredictor {
    /// A fresh model with no observations.
    pub fn new() -> SequentialPredictor {
        SequentialPredictor::default()
    }
}

impl HintSource for SequentialPredictor {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn observe(&mut self, block: BlockId) {
        let b = block.raw();
        if let Some(prev) = self.last {
            let delta = b as i128 - prev as i128;
            if delta == self.stride && delta != 0 {
                self.run = self.run.saturating_add(1);
            } else {
                self.stride = delta;
                self.run = 1;
            }
        }
        self.last = Some(b);
    }

    fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>) {
        if self.run < SEQ_MIN_RUN || self.stride == 0 {
            return;
        }
        let Some(last) = self.last else { return };
        let mut next = last as i128;
        for _ in 0..k {
            next += self.stride;
            // A stride running off either end of the block-id space stops
            // predicting rather than wrapping.
            if next < 0 || next > u64::MAX as i128 {
                break;
            }
            out.push(BlockId(next as u64));
        }
    }
}

/// Successor counts for one block, in first-seen order (the order breaks
/// argmax ties deterministically).
type Successors = Vec<(u64, u32)>;

/// First-order Markov next-block model: per observed block, count which
/// block follows it; predict by walking the most-frequent-successor chain
/// forward from the last reference. Ties break toward the first-seen
/// successor, so predictions are a pure function of the history.
#[derive(Debug, Default)]
pub struct MarkovPredictor {
    succ: HashMap<u64, Successors>,
    last: Option<u64>,
}

impl MarkovPredictor {
    /// A fresh model with no observations.
    pub fn new() -> MarkovPredictor {
        MarkovPredictor::default()
    }
}

/// The heaviest-count entry, first-seen winning ties (`>` not `>=`).
fn argmax(counts: &[(u64, u32)]) -> Option<u64> {
    let mut best: Option<(u64, u32)> = None;
    for &(b, c) in counts {
        if best.is_none_or(|(_, bc)| c > bc) {
            best = Some((b, c));
        }
    }
    best.map(|(b, _)| b)
}

impl HintSource for MarkovPredictor {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn observe(&mut self, block: BlockId) {
        let b = block.raw();
        if let Some(prev) = self.last {
            let counts = self.succ.entry(prev).or_default();
            match counts.iter_mut().find(|e| e.0 == b) {
                Some(e) => e.1 = e.1.saturating_add(1),
                None => counts.push((b, 1)),
            }
        }
        self.last = Some(b);
    }

    fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>) {
        let Some(mut cur) = self.last else { return };
        for _ in 0..k {
            let Some(next) = self.succ.get(&cur).and_then(|c| argmax(c)) else {
                break;
            };
            out.push(BlockId(next));
            cur = next;
        }
    }
}

/// How far back the association miner looks when pairing an arriving
/// block with its recent predecessors.
const MITHRIL_SPAN: usize = 4;

/// How many recent references seed a Mithril rollout.
const MITHRIL_SEEDS: usize = 4;

/// Minimum co-occurrence count before an association is trusted
/// ("sporadic" still means *recurring*: one coincidence is noise).
const MITHRIL_MIN_SUPPORT: u32 = 2;

/// MITHRIL-style sporadic-association mining (Yang et al., PAPERS.md):
/// count pairs of blocks that recur close together in time at distances
/// **2..=[`MITHRIL_SPAN`]** — deliberately excluding the immediate
/// successor, which is the Markov model's territory — and predict the
/// strongest associations of the last few references. This catches
/// recurring loose patterns (metadata-then-data, header-then-footer)
/// that stride and one-step-chain models both miss.
#[derive(Debug, Default)]
pub struct MithrilPredictor {
    /// Most recent `MITHRIL_SPAN` references, oldest first.
    recent: Vec<u64>,
    /// `assoc[a]` counts blocks seen 2..=SPAN references after `a`.
    assoc: HashMap<u64, Successors>,
}

impl MithrilPredictor {
    /// A fresh model with no observations.
    pub fn new() -> MithrilPredictor {
        MithrilPredictor::default()
    }
}

impl HintSource for MithrilPredictor {
    fn name(&self) -> &'static str {
        "mithril"
    }

    fn observe(&mut self, block: BlockId) {
        let b = block.raw();
        // `recent` is oldest-first: the entry `distance` slots from the
        // back preceded `b` by `distance + 1` references.
        for (back, &p) in self.recent.iter().rev().enumerate() {
            let distance = back + 1;
            if distance < 2 {
                continue; // the immediate successor belongs to Markov
            }
            let counts = self.assoc.entry(p).or_default();
            match counts.iter_mut().find(|e| e.0 == b) {
                Some(e) => e.1 = e.1.saturating_add(1),
                None => counts.push((b, 1)),
            }
        }
        self.recent.push(b);
        if self.recent.len() > MITHRIL_SPAN {
            self.recent.remove(0);
        }
    }

    fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>) {
        // Merge the supported associations of the last few references
        // into one candidate list (first-seen order, scores summed), then
        // emit by descending score with first-seen tie-break.
        let mut candidates: Vec<(u64, u64)> = Vec::new();
        for &seed in self.recent.iter().rev().take(MITHRIL_SEEDS) {
            let Some(counts) = self.assoc.get(&seed) else {
                continue;
            };
            for &(b, c) in counts {
                if c < MITHRIL_MIN_SUPPORT {
                    continue;
                }
                match candidates.iter_mut().find(|e| e.0 == b) {
                    Some(e) => e.1 += c as u64,
                    None => candidates.push((b, c as u64)),
                }
            }
        }
        for _ in 0..k {
            let mut best: Option<usize> = None;
            for (i, &(_, score)) in candidates.iter().enumerate() {
                if score > 0 && best.is_none_or(|j| score > candidates[j].1) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            out.push(BlockId(candidates[i].0));
            candidates[i].1 = 0; // each candidate is emitted once
        }
    }
}

/// The online predictor families, for configuration and CLI selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Stride run detection ([`SequentialPredictor`]).
    Sequential,
    /// First-order Markov chain ([`MarkovPredictor`]).
    Markov,
    /// Sporadic-association mining ([`MithrilPredictor`]).
    Mithril,
}

impl PredictorKind {
    /// Every predictor, in display order.
    pub const ALL: [PredictorKind; 3] = [
        PredictorKind::Sequential,
        PredictorKind::Markov,
        PredictorKind::Mithril,
    ];

    /// The short stable name (matches the built source's
    /// [`HintSource::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Sequential => "seq",
            PredictorKind::Markov => "markov",
            PredictorKind::Mithril => "mithril",
        }
    }

    /// Parses a [`name`](PredictorKind::name).
    pub fn by_name(name: &str) -> Option<PredictorKind> {
        PredictorKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds a fresh (observation-free) source of this kind.
    pub fn build(&self) -> Box<dyn HintSource> {
        match self {
            PredictorKind::Sequential => Box::new(SequentialPredictor::new()),
            PredictorKind::Markov => Box::new(MarkovPredictor::new()),
            PredictorKind::Mithril => Box::new(MithrilPredictor::new()),
        }
    }
}

/// Where a run's hints come from: the paper's disclosed oracle (the
/// default, byte-identical to the pre-`HintSource` engine) or an online
/// predictor. In `Predicted` mode the [`HintSpec`](crate::hints::HintSpec)
/// disclosure mask is ignored — prediction replaces disclosure entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HintMode {
    /// Disclosed hints through the full-knowledge oracle (the paper).
    #[default]
    Oracle,
    /// Hints predicted online by the given model.
    Predicted(PredictorKind),
}

impl HintMode {
    /// Every mode, oracle first.
    pub const ALL: [HintMode; 4] = [
        HintMode::Oracle,
        HintMode::Predicted(PredictorKind::Sequential),
        HintMode::Predicted(PredictorKind::Markov),
        HintMode::Predicted(PredictorKind::Mithril),
    ];

    /// The mode's stable name (`oracle`, `seq`, `markov`, `mithril`).
    pub fn name(&self) -> &'static str {
        match self {
            HintMode::Oracle => "oracle",
            HintMode::Predicted(kind) => kind.name(),
        }
    }

    /// Parses a [`name`](HintMode::name).
    pub fn by_name(name: &str) -> Option<HintMode> {
        HintMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// Prediction accuracy accounting for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintStats {
    /// The source that produced the hints.
    pub source: &'static str,
    /// Positions the source ventured a prediction for.
    pub predicted: u64,
    /// Predictions matching the true reference at their position.
    pub correct: u64,
    /// Trace length (the denominator for recall).
    pub references: u64,
}

impl HintStats {
    /// Fraction of predictions that were right (0 when none were made).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }

    /// Fraction of references correctly predicted.
    pub fn recall(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.correct as f64 / self.references as f64
        }
    }

    /// These statistics as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"source":"{}","predicted":{},"correct":{},"references":{},"precision":{:.6},"recall":{:.6}}}"#,
            self.source,
            self.predicted,
            self.correct,
            self.references,
            self.precision(),
            self.recall(),
        )
    }
}

/// Epoch length of the prediction pre-pass: how many positions ahead a
/// source predicts before its observations catch up. Long enough for the
/// policies' prefetch lookahead, short enough that the model adapts
/// within a trace.
pub const DEFAULT_EPOCH: usize = 256;

/// Runs the causal epoch pre-pass and materializes the predictions as an
/// [`Oracle`] the engine and policies consume unchanged.
///
/// For each epoch starting at position `p`, the source — having observed
/// exactly the references before `p` — predicts the epoch's blocks; each
/// prediction becomes a `(position, block)` hint entry (wrong ones
/// included, see the module docs), and positions the source declined to
/// predict stay undisclosed. Every *true* trace block keeps a compact
/// index via the universe, so demand misses on unpredicted references
/// always resolve.
pub fn predicted_oracle(
    trace: &Trace,
    layout: Layout,
    source: &mut dyn HintSource,
    epoch: usize,
) -> (Oracle, HintStats) {
    assert!(epoch > 0, "the prediction epoch must be positive");
    let n = trace.requests.len();
    let mut entries: Vec<(usize, BlockId)> = Vec::new();
    let mut out: Vec<BlockId> = Vec::with_capacity(epoch);
    let (mut predicted, mut correct) = (0u64, 0u64);
    let mut p = 0usize;
    while p < n {
        let len = epoch.min(n - p);
        out.clear();
        source.rollout(len, &mut out);
        for (j, &b) in out.iter().take(len).enumerate() {
            entries.push((p + j, b));
            predicted += 1;
            if b == trace.requests[p + j].block {
                correct += 1;
            }
        }
        for req in &trace.requests[p..p + len] {
            source.observe(req.block);
        }
        p += len;
    }
    let universe: Vec<BlockId> = trace.requests.iter().map(|r| r.block).collect();
    let oracle = Oracle::from_positions_with_universe(n, entries, &universe, layout);
    let stats = HintStats {
        source: source.name(),
        predicted,
        correct,
        references: n as u64,
    };
    (oracle, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_trace::Request;
    use parcache_types::Nanos;

    fn trace_of(blocks: &[u64]) -> Trace {
        Trace::new(
            "t",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(1),
                })
                .collect(),
            4,
        )
    }

    fn rollout(src: &mut dyn HintSource, k: usize) -> Vec<u64> {
        let mut out = Vec::new();
        src.rollout(k, &mut out);
        out.into_iter().map(|b| b.raw()).collect()
    }

    fn observe_all(src: &mut dyn HintSource, blocks: &[u64]) {
        for &b in blocks {
            src.observe(BlockId(b));
        }
    }

    #[test]
    fn oracle_hints_replay_the_future() {
        let t = trace_of(&[3, 1, 4, 1, 5]);
        let mut src = OracleHints::new(&t);
        assert_eq!(rollout(&mut src, 3), vec![3, 1, 4]);
        src.observe(BlockId(3));
        src.observe(BlockId(1));
        assert_eq!(rollout(&mut src, 10), vec![4, 1, 5]);
    }

    #[test]
    fn oracle_hints_prepass_reproduces_the_full_oracle() {
        // The refactoring contract: the disclosed path expressed as a
        // HintSource yields an oracle indistinguishable (by every query
        // the policies make) from the one built with full knowledge.
        let t = trace_of(&[0, 7, 2, 7, 0, 3, 2, 0, 1, 7, 3, 3, 0]);
        for disks in [1, 3] {
            let layout = Layout::striped(disks);
            let full = Oracle::new(&t, layout);
            let mut src = OracleHints::new(&t);
            let (pred, stats) = predicted_oracle(&t, layout, &mut src, 4);
            assert_eq!(stats.predicted, t.requests.len() as u64);
            assert_eq!(stats.correct, stats.predicted);
            assert_eq!(stats.precision(), 1.0);
            assert_eq!(stats.recall(), 1.0);
            assert_eq!(pred.len(), full.len());
            for pos in 0..t.requests.len() {
                assert_eq!(pred.block_at(pos), full.block_at(pos), "pos {pos}");
            }
            for b in 0..8u64 {
                for pos in 0..=t.requests.len() {
                    assert_eq!(
                        pred.next_occurrence(BlockId(b), pos),
                        full.next_occurrence(BlockId(b), pos),
                        "block {b} from {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_learns_a_stride_and_extrapolates() {
        let mut s = SequentialPredictor::new();
        observe_all(&mut s, &[10, 12, 14]);
        assert_eq!(rollout(&mut s, 4), vec![16, 18, 20, 22]);
        // A broken stride withdraws the prediction...
        s.observe(BlockId(5));
        assert_eq!(rollout(&mut s, 4), Vec::<u64>::new());
        // ...until a new run re-establishes confidence.
        observe_all(&mut s, &[6, 7]);
        assert_eq!(rollout(&mut s, 2), vec![8, 9]);
    }

    #[test]
    fn sequential_ignores_repeats_and_respects_bounds() {
        let mut s = SequentialPredictor::new();
        observe_all(&mut s, &[9, 9, 9, 9]);
        assert_eq!(rollout(&mut s, 3), Vec::<u64>::new(), "zero stride");
        let mut d = SequentialPredictor::new();
        observe_all(&mut d, &[10, 6, 2]);
        // Descending run stops at the bottom of the id space, no wrap.
        assert_eq!(rollout(&mut d, 5), Vec::<u64>::new());
        let mut d = SequentialPredictor::new();
        observe_all(&mut d, &[13, 9, 5]);
        assert_eq!(rollout(&mut d, 5), vec![1]);
    }

    #[test]
    fn markov_walks_the_argmax_chain_with_first_seen_ties() {
        let mut m = MarkovPredictor::new();
        // 1 -> 2 twice, 1 -> 3 once; 2 -> 1 always.
        observe_all(&mut m, &[1, 2, 1, 3, 1, 2, 1]);
        assert_eq!(rollout(&mut m, 4), vec![2, 1, 2, 1]);
        // After one more 1 -> 3, the successors of 1 tie at 2 apiece;
        // the chain keeps the first-seen successor, deterministically.
        m.observe(BlockId(3));
        assert_eq!(rollout(&mut m, 3), vec![1, 2, 1]);
    }

    #[test]
    fn markov_is_silent_without_an_edge() {
        let mut m = MarkovPredictor::new();
        assert_eq!(rollout(&mut m, 3), Vec::<u64>::new());
        m.observe(BlockId(1));
        assert_eq!(rollout(&mut m, 3), Vec::<u64>::new(), "no successor yet");
    }

    #[test]
    fn mithril_mines_recurring_sporadic_pairs() {
        let mut m = MithrilPredictor::new();
        // B=9 recurs two references after A=4, with varying filler —
        // exactly the pattern the span-2..4 miner exists for. The Markov
        // chain would see only the noisy immediate successors.
        observe_all(&mut m, &[4, 100, 9, 4, 101, 9, 4, 102]);
        let predicted = rollout(&mut m, 3);
        assert!(predicted.contains(&9), "association 4 => 9: {predicted:?}");
        // One co-occurrence is below MIN_SUPPORT: a fresh model that saw
        // the pair once stays silent.
        let mut one = MithrilPredictor::new();
        observe_all(&mut one, &[4, 100, 9, 4]);
        assert_eq!(rollout(&mut one, 3), Vec::<u64>::new());
    }

    #[test]
    fn mithril_rollout_is_deterministic() {
        let seq = [1u64, 2, 3, 1, 2, 3, 1, 2, 3, 1];
        let mut a = MithrilPredictor::new();
        let mut b = MithrilPredictor::new();
        observe_all(&mut a, &seq);
        observe_all(&mut b, &seq);
        let ra = rollout(&mut a, 5);
        assert_eq!(ra, rollout(&mut b, 5));
        assert!(!ra.is_empty(), "a periodic loop is minable");
    }

    #[test]
    fn kinds_build_and_name_consistently() {
        for kind in PredictorKind::ALL {
            let src = kind.build();
            assert_eq!(src.name(), kind.name());
            assert_eq!(PredictorKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(PredictorKind::by_name("nope"), None);
        for mode in HintMode::ALL {
            assert_eq!(HintMode::by_name(mode.name()), Some(mode));
        }
        assert_eq!(HintMode::by_name("oracle"), Some(HintMode::Oracle));
        assert_eq!(HintMode::default(), HintMode::Oracle);
    }

    #[test]
    fn prepass_is_causal() {
        // A source that predicts the last block it observed; on a trace
        // that changes at an epoch boundary, the first epoch must get no
        // prediction (nothing observed yet) and later epochs only the
        // past — never the epoch's own data.
        struct Parrot(Option<BlockId>);
        impl HintSource for Parrot {
            fn name(&self) -> &'static str {
                "parrot"
            }
            fn observe(&mut self, b: BlockId) {
                self.0 = Some(b);
            }
            fn rollout(&mut self, k: usize, out: &mut Vec<BlockId>) {
                if let Some(b) = self.0 {
                    out.extend((0..k).map(|_| b));
                }
            }
        }
        let t = trace_of(&[1, 1, 2, 2]);
        let mut src = Parrot(None);
        let (oracle, stats) = predicted_oracle(&t, Layout::striped(1), &mut src, 2);
        // Epoch [0,2) predicted nothing; epoch [2,4) predicted 1,1 from
        // the first epoch's tail — both wrong.
        assert_eq!(stats.predicted, 2);
        assert_eq!(stats.correct, 0);
        assert_eq!(oracle.block_at(0), crate::oracle::UNKNOWN_BLOCK);
        assert_eq!(oracle.block_at(2), BlockId(1));
    }

    #[test]
    fn prepass_stats_count_partial_predictions() {
        // Sequential on one long ascending run: silent for the first
        // epoch's head, near-perfect afterwards.
        let blocks: Vec<u64> = (0..64).collect();
        let t = trace_of(&blocks);
        let mut s = SequentialPredictor::new();
        let (_, stats) = predicted_oracle(&t, Layout::striped(1), &mut s, 8);
        assert_eq!(stats.references, 64);
        assert_eq!(stats.predicted, 56, "every epoch after the first");
        assert_eq!(stats.correct, 56);
        assert!(stats.precision() == 1.0 && stats.recall() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_epoch_rejected() {
        let t = trace_of(&[1]);
        let mut s = SequentialPredictor::new();
        predicted_oracle(&t, Layout::striped(1), &mut s, 0);
    }

    #[test]
    fn stats_edge_cases() {
        let s = HintStats {
            source: "x",
            predicted: 0,
            correct: 0,
            references: 0,
        };
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        let j = s.to_json();
        assert!(j.contains(r#""source":"x""#), "{j}");
    }
}
