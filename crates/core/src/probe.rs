//! The probe layer: typed simulation events and the observer trait.
//!
//! A [`Probe`] receives every interesting thing the engine does — fetch
//! issue/start/completion, cache hits and misses, evictions, stalls,
//! policy decision points, write-behind flushes, and the drive layer's
//! queue-depth and head-position reports — as a typed [`Event`] stream.
//!
//! The default probe is [`NoopProbe`], a zero-sized type whose
//! [`Probe::ENABLED`] is `false`. The engine is generic over the probe, so
//! with the no-op every instrumentation site is statically dead and the
//! optimizer removes it: the uninstrumented hot path costs nothing.

use parcache_disk::disk::ReqKind;
use parcache_disk::model::ServiceOutcome;
use parcache_disk::probe::DiskEvent;
use parcache_types::{BlockId, DiskId, Nanos};

/// Why a fault was charged to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// The drive serviced the request but the data never arrived.
    MediaError,
    /// The drive was out of service and rejected the request outright.
    Rejected,
}

impl FaultCause {
    /// A short machine-readable tag.
    pub fn name(&self) -> &'static str {
        match self {
            FaultCause::MediaError => "media_error",
            FaultCause::Rejected => "rejected",
        }
    }

    /// The cause whose [`FaultCause::name`] is `name`, if any.
    pub fn from_name(name: &str) -> Option<FaultCause> {
        match name {
            "media_error" => Some(FaultCause::MediaError),
            "rejected" => Some(FaultCause::Rejected),
            _ => None,
        }
    }
}

/// Why the application stalled: the typed provenance of one stall
/// interval, decided by the engine from the state of the awaited block at
/// the moment the stall began (and from faults charged to it while the
/// stall was open). Exactly one cause is assigned per stall, so the
/// per-cause charged-stall totals partition the report's stall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// A prefetch was issued in time to be on the platter, but had not
    /// finished when the application arrived: the policy acted, just not
    /// early enough.
    LatePrefetch,
    /// No fetch of the block was in flight when the reference arrived and
    /// the block had never been resident: the policy never acted (demand
    /// misses land here by construction).
    NoPrefetch,
    /// A fetch was in flight but sat in its drive's queue behind other
    /// work — or the drive was inside a declared degraded window — when
    /// the reference arrived: the array, not the policy's timing, is the
    /// bottleneck.
    DiskCongestion,
    /// The wait was bound up with driver fault handling: a fault was
    /// charged to the awaited block while the stall was open, or the
    /// block was already mid-retry when the stall began.
    FaultRetry,
    /// The block was resident earlier, lost its frame to an eviction, and
    /// the application missed on it again with no fetch in flight: a
    /// caching (replacement) failure rather than a prefetching one.
    EvictionRefetch,
}

impl StallCause {
    /// Every cause, in the order the per-cause accounting arrays use.
    pub const ALL: [StallCause; 5] = [
        StallCause::LatePrefetch,
        StallCause::NoPrefetch,
        StallCause::DiskCongestion,
        StallCause::FaultRetry,
        StallCause::EvictionRefetch,
    ];

    /// A short machine-readable tag.
    pub fn name(&self) -> &'static str {
        match self {
            StallCause::LatePrefetch => "late_prefetch",
            StallCause::NoPrefetch => "no_prefetch",
            StallCause::DiskCongestion => "congestion",
            StallCause::FaultRetry => "retry",
            StallCause::EvictionRefetch => "eviction_refetch",
        }
    }

    /// Index into [`StallCause::ALL`]-ordered accounting arrays.
    pub fn index(&self) -> usize {
        match self {
            StallCause::LatePrefetch => 0,
            StallCause::NoPrefetch => 1,
            StallCause::DiskCongestion => 2,
            StallCause::FaultRetry => 3,
            StallCause::EvictionRefetch => 4,
        }
    }

    /// The cause whose [`StallCause::name`] is `name`, if any.
    pub fn from_name(name: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// One simulation event, stamped with the simulated time it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The policy was given a decision point.
    PolicyDecision {
        /// Simulated time.
        now: Nanos,
        /// Index of the next unconsumed reference.
        cursor: usize,
    },
    /// A referenced block was already resident.
    CacheHit {
        /// Simulated time.
        now: Nanos,
        /// The referenced block.
        block: BlockId,
    },
    /// A referenced block was not resident (it may already be in flight).
    CacheMiss {
        /// Simulated time.
        now: Nanos,
        /// The referenced block.
        block: BlockId,
    },
    /// A resident block lost its frame to a fetch.
    Eviction {
        /// Simulated time.
        now: Nanos,
        /// The evicted block.
        block: BlockId,
    },
    /// The policy issued a fetch (frame reserved, request enqueued).
    FetchIssued {
        /// Simulated time.
        now: Nanos,
        /// The block fetched.
        block: BlockId,
        /// The drive it was routed to.
        disk: DiskId,
        /// True when issued from the demand-miss path rather than as a
        /// prefetch.
        demand: bool,
        /// The block evicted to make room, if any.
        evicted: Option<BlockId>,
    },
    /// A write-behind flush was issued.
    WriteIssued {
        /// Simulated time.
        now: Nanos,
        /// The block flushed.
        block: BlockId,
        /// The drive it was routed to.
        disk: DiskId,
    },
    /// A request joined a drive's queue (depth sampled after arrival).
    QueueDepth {
        /// Simulated time.
        now: Nanos,
        /// The drive.
        disk: DiskId,
        /// Queue length plus in-service count after the arrival.
        depth: usize,
    },
    /// A drive began servicing a request.
    FetchStarted {
        /// Simulated time.
        now: Nanos,
        /// The block being serviced.
        block: BlockId,
        /// The drive.
        disk: DiskId,
        /// True for a write-behind flush.
        write: bool,
        /// Head position (cylinder) after the seek for this request.
        head_cylinder: u64,
        /// When the service will complete.
        completes: Nanos,
    },
    /// A drive finished servicing a request.
    FetchCompleted {
        /// Simulated time.
        now: Nanos,
        /// The block serviced.
        block: BlockId,
        /// The drive.
        disk: DiskId,
        /// True for a write-behind flush.
        write: bool,
        /// Pure service time.
        service: Nanos,
        /// Response time (completion minus enqueue).
        response: Nanos,
        /// Head position (cylinder) where the request left the head.
        head_cylinder: u64,
        /// Drive load after the completion.
        depth: usize,
        /// True when the attempt ended in a media error (the time was
        /// spent but no data arrived; the driver decides what happens
        /// next). Always false on a healthy array.
        faulted: bool,
    },
    /// The application began waiting for a non-resident block.
    StallBegin {
        /// Simulated time.
        now: Nanos,
        /// The block being waited for.
        block: BlockId,
    },
    /// The application's wait ended.
    StallEnd {
        /// Simulated time.
        now: Nanos,
        /// The block that arrived.
        block: BlockId,
        /// How long the wait lasted (the full window, including driver
        /// overhead charged while it was open).
        stalled: Nanos,
        /// Why the application stalled.
        cause: StallCause,
        /// Stall time charged to `cause`: the window minus the driver
        /// overhead charged inside it. Summed over all stalls this equals
        /// the report's stall component exactly.
        charged: Nanos,
    },
    /// A fault was charged to a request: a media error on completion, or
    /// an out-of-service drive rejecting the issue.
    FaultInjected {
        /// Simulated time.
        now: Nanos,
        /// The affected block.
        block: BlockId,
        /// The faulting drive.
        disk: DiskId,
        /// True for a write-behind flush.
        write: bool,
        /// What went wrong.
        cause: FaultCause,
        /// How many faults this request has now absorbed (1-based).
        attempt: u32,
    },
    /// The driver re-issued a faulted fetch after its backoff expired.
    RetryIssued {
        /// Simulated time.
        now: Nanos,
        /// The block being retried.
        block: BlockId,
        /// The drive it is routed to.
        disk: DiskId,
        /// Which retry this is (1-based, matching the fault it answers).
        attempt: u32,
    },
    /// The driver gave up on a request (retry budget or timeout spent,
    /// or a best-effort write faulted).
    RequestAbandoned {
        /// Simulated time.
        now: Nanos,
        /// The abandoned block.
        block: BlockId,
        /// The drive that kept faulting.
        disk: DiskId,
        /// True for a write-behind flush.
        write: bool,
        /// Faults absorbed before giving up.
        attempts: u32,
    },
    /// A drive entered a declared degraded window (fail-slow or outage).
    DiskDegraded {
        /// Simulated time.
        now: Nanos,
        /// The degraded drive.
        disk: DiskId,
    },
    /// A drive left its degraded window.
    DiskRecovered {
        /// Simulated time.
        now: Nanos,
        /// The recovered drive.
        disk: DiskId,
    },
}

impl Event {
    /// Wraps a drive-layer event into the simulation event stream.
    pub fn from_disk(now: Nanos, disk: DiskId, e: DiskEvent) -> Event {
        match e {
            DiskEvent::Enqueued { depth, .. } => Event::QueueDepth { now, disk, depth },
            DiskEvent::ServiceStarted {
                block,
                kind,
                head_cylinder,
                completes,
            } => Event::FetchStarted {
                now,
                block,
                disk,
                write: kind == ReqKind::Write,
                head_cylinder,
                completes,
            },
            DiskEvent::ServiceCompleted {
                block,
                kind,
                service,
                response,
                head_cylinder,
                depth,
                outcome,
            } => Event::FetchCompleted {
                now,
                block,
                disk,
                write: kind == ReqKind::Write,
                service,
                response,
                head_cylinder,
                depth,
                faulted: outcome == ServiceOutcome::MediaError,
            },
        }
    }

    /// A short machine-readable tag naming the event variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PolicyDecision { .. } => "policy_decision",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::Eviction { .. } => "eviction",
            Event::FetchIssued { .. } => "fetch_issued",
            Event::WriteIssued { .. } => "write_issued",
            Event::QueueDepth { .. } => "queue_depth",
            Event::FetchStarted { .. } => "fetch_started",
            Event::FetchCompleted { .. } => "fetch_completed",
            Event::StallBegin { .. } => "stall_begin",
            Event::StallEnd { .. } => "stall_end",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RetryIssued { .. } => "retry_issued",
            Event::RequestAbandoned { .. } => "request_abandoned",
            Event::DiskDegraded { .. } => "disk_degraded",
            Event::DiskRecovered { .. } => "disk_recovered",
        }
    }

    /// The simulated time the event carries.
    pub fn time(&self) -> Nanos {
        match *self {
            Event::PolicyDecision { now, .. }
            | Event::CacheHit { now, .. }
            | Event::CacheMiss { now, .. }
            | Event::Eviction { now, .. }
            | Event::FetchIssued { now, .. }
            | Event::WriteIssued { now, .. }
            | Event::QueueDepth { now, .. }
            | Event::FetchStarted { now, .. }
            | Event::FetchCompleted { now, .. }
            | Event::StallBegin { now, .. }
            | Event::StallEnd { now, .. }
            | Event::FaultInjected { now, .. }
            | Event::RetryIssued { now, .. }
            | Event::RequestAbandoned { now, .. }
            | Event::DiskDegraded { now, .. }
            | Event::DiskRecovered { now, .. } => now,
        }
    }

    /// This event as one line of JSON (no trailing newline), suitable for
    /// a JSONL event log.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            r#"{{"event":"{}","t_ns":{}"#,
            self.kind(),
            self.time().as_nanos()
        );
        match *self {
            Event::PolicyDecision { cursor, .. } => {
                s.push_str(&format!(r#","cursor":{cursor}"#));
            }
            Event::CacheHit { block, .. }
            | Event::CacheMiss { block, .. }
            | Event::Eviction { block, .. }
            | Event::StallBegin { block, .. } => {
                s.push_str(&format!(r#","block":{}"#, block.raw()));
            }
            Event::FetchIssued {
                block,
                disk,
                demand,
                evicted,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"demand":{demand}"#,
                    block.raw(),
                    disk.index()
                ));
                if let Some(e) = evicted {
                    s.push_str(&format!(r#","evicted":{}"#, e.raw()));
                }
            }
            Event::WriteIssued { block, disk, .. } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{}"#,
                    block.raw(),
                    disk.index()
                ));
            }
            Event::QueueDepth { disk, depth, .. } => {
                s.push_str(&format!(r#","disk":{},"depth":{depth}"#, disk.index()));
            }
            Event::FetchStarted {
                block,
                disk,
                write,
                head_cylinder,
                completes,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"write":{write},"head_cylinder":{head_cylinder},"completes_ns":{}"#,
                    block.raw(),
                    disk.index(),
                    completes.as_nanos()
                ));
            }
            Event::FetchCompleted {
                block,
                disk,
                write,
                service,
                response,
                head_cylinder,
                depth,
                faulted,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"write":{write},"service_ns":{},"response_ns":{},"head_cylinder":{head_cylinder},"depth":{depth}"#,
                    block.raw(),
                    disk.index(),
                    service.as_nanos(),
                    response.as_nanos()
                ));
                // Emitted only when set, so fault-free event logs stay
                // byte-identical to logs from before fault support.
                if faulted {
                    s.push_str(r#","faulted":true"#);
                }
            }
            Event::StallEnd {
                block,
                stalled,
                cause,
                charged,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"stalled_ns":{},"cause":"{}","charged_ns":{}"#,
                    block.raw(),
                    stalled.as_nanos(),
                    cause.name(),
                    charged.as_nanos()
                ));
            }
            Event::FaultInjected {
                block,
                disk,
                write,
                cause,
                attempt,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"write":{write},"cause":"{}","attempt":{attempt}"#,
                    block.raw(),
                    disk.index(),
                    cause.name()
                ));
            }
            Event::RetryIssued {
                block,
                disk,
                attempt,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"attempt":{attempt}"#,
                    block.raw(),
                    disk.index()
                ));
            }
            Event::RequestAbandoned {
                block,
                disk,
                write,
                attempts,
                ..
            } => {
                s.push_str(&format!(
                    r#","block":{},"disk":{},"write":{write},"attempts":{attempts}"#,
                    block.raw(),
                    disk.index()
                ));
            }
            Event::DiskDegraded { disk, .. } | Event::DiskRecovered { disk, .. } => {
                s.push_str(&format!(r#","disk":{}"#, disk.index()));
            }
        }
        s.push('}');
        s
    }

    /// Parses one [`Event::to_json`] line back into an [`Event`]: the
    /// exact inverse over every variant, so a JSONL event log round-trips
    /// losslessly. Returns `None` on anything `to_json` cannot emit.
    pub fn from_json(line: &str) -> Option<Event> {
        let kind = json_field_str(line, "event")?;
        let now = Nanos(json_field_u64(line, "t_ns")?);
        let block = |k: &str| json_field_u64(line, k).map(BlockId);
        let disk = || json_field_u64(line, "disk").map(|d| DiskId(d as usize));
        Some(match kind {
            "policy_decision" => Event::PolicyDecision {
                now,
                cursor: json_field_u64(line, "cursor")? as usize,
            },
            "cache_hit" => Event::CacheHit {
                now,
                block: block("block")?,
            },
            "cache_miss" => Event::CacheMiss {
                now,
                block: block("block")?,
            },
            "eviction" => Event::Eviction {
                now,
                block: block("block")?,
            },
            "fetch_issued" => Event::FetchIssued {
                now,
                block: block("block")?,
                disk: disk()?,
                demand: json_field_bool(line, "demand")?,
                evicted: block("evicted"),
            },
            "write_issued" => Event::WriteIssued {
                now,
                block: block("block")?,
                disk: disk()?,
            },
            "queue_depth" => Event::QueueDepth {
                now,
                disk: disk()?,
                depth: json_field_u64(line, "depth")? as usize,
            },
            "fetch_started" => Event::FetchStarted {
                now,
                block: block("block")?,
                disk: disk()?,
                write: json_field_bool(line, "write")?,
                head_cylinder: json_field_u64(line, "head_cylinder")?,
                completes: Nanos(json_field_u64(line, "completes_ns")?),
            },
            "fetch_completed" => Event::FetchCompleted {
                now,
                block: block("block")?,
                disk: disk()?,
                write: json_field_bool(line, "write")?,
                service: Nanos(json_field_u64(line, "service_ns")?),
                response: Nanos(json_field_u64(line, "response_ns")?),
                head_cylinder: json_field_u64(line, "head_cylinder")?,
                depth: json_field_u64(line, "depth")? as usize,
                // Omitted from healthy-run logs, so absent means false.
                faulted: json_field_bool(line, "faulted").unwrap_or(false),
            },
            "stall_begin" => Event::StallBegin {
                now,
                block: block("block")?,
            },
            "stall_end" => Event::StallEnd {
                now,
                block: block("block")?,
                stalled: Nanos(json_field_u64(line, "stalled_ns")?),
                cause: StallCause::from_name(json_field_str(line, "cause")?)?,
                charged: Nanos(json_field_u64(line, "charged_ns")?),
            },
            "fault_injected" => Event::FaultInjected {
                now,
                block: block("block")?,
                disk: disk()?,
                write: json_field_bool(line, "write")?,
                cause: FaultCause::from_name(json_field_str(line, "cause")?)?,
                attempt: json_field_u64(line, "attempt")? as u32,
            },
            "retry_issued" => Event::RetryIssued {
                now,
                block: block("block")?,
                disk: disk()?,
                attempt: json_field_u64(line, "attempt")? as u32,
            },
            "request_abandoned" => Event::RequestAbandoned {
                now,
                block: block("block")?,
                disk: disk()?,
                write: json_field_bool(line, "write")?,
                attempts: json_field_u64(line, "attempts")? as u32,
            },
            "disk_degraded" => Event::DiskDegraded { now, disk: disk()? },
            "disk_recovered" => Event::DiskRecovered { now, disk: disk()? },
            _ => return None,
        })
    }
}

/// Extracts the raw text after `"key":` in a flat one-line JSON object.
/// Event lines never nest objects or escape strings, so a plain scan is
/// an exact parse for them.
fn json_field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)?;
    Some(&line[at + pat.len()..])
}

fn json_field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = json_field_raw(line, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_field_bool(line: &str, key: &str) -> Option<bool> {
    let rest = json_field_raw(line, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn json_field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = json_field_raw(line, key)?;
    rest.strip_prefix('"')?.split('"').next()
}

/// An observer of the engine's event stream.
///
/// Implementations must be cheap: the engine calls [`Probe::on_event`]
/// synchronously at every decision point. Any `FnMut(&Event)` closure is a
/// probe.
pub trait Probe {
    /// Whether this probe observes anything. The engine guards every
    /// emission site on this associated constant, so a `false` here (see
    /// [`NoopProbe`]) removes the instrumentation at compile time.
    const ENABLED: bool = true;

    /// Receives one event.
    fn on_event(&mut self, event: &Event);
}

/// The default do-nothing probe. Zero-sized, `ENABLED = false`: an engine
/// monomorphized over it contains no instrumentation code at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &Event) {}
}

impl<F: FnMut(&Event)> Probe for F {
    fn on_event(&mut self, event: &Event) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
        const { assert!(!NoopProbe::ENABLED) }
    }

    #[test]
    fn closures_are_probes() {
        let mut seen = 0usize;
        {
            let mut p = |_: &Event| seen += 1;
            p.on_event(&Event::CacheHit {
                now: Nanos::ZERO,
                block: BlockId(1),
            });
        }
        assert_eq!(seen, 1);
    }

    #[test]
    fn json_lines_carry_kind_and_time() {
        let e = Event::FetchIssued {
            now: Nanos::from_millis(2),
            block: BlockId(7),
            disk: DiskId(1),
            demand: true,
            evicted: Some(BlockId(3)),
        };
        let j = e.to_json();
        assert!(
            j.starts_with(r#"{"event":"fetch_issued","t_ns":2000000"#),
            "{j}"
        );
        assert!(j.contains(r#""demand":true"#), "{j}");
        assert!(j.contains(r#""evicted":3"#), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn fault_events_round_trip_through_json() {
        // The five fault events must survive JSONL serialization exactly:
        // a degraded-run event log is only useful if it parses back.
        let events = [
            Event::FaultInjected {
                now: Nanos::from_millis(3),
                block: BlockId(9),
                disk: DiskId(1),
                write: false,
                cause: FaultCause::MediaError,
                attempt: 2,
            },
            Event::RetryIssued {
                now: Nanos::from_millis(4),
                block: BlockId(9),
                disk: DiskId(1),
                attempt: 2,
            },
            Event::RequestAbandoned {
                now: Nanos::from_millis(5),
                block: BlockId(9),
                disk: DiskId(1),
                write: true,
                attempts: 3,
            },
            Event::DiskDegraded {
                now: Nanos::from_millis(6),
                disk: DiskId(0),
            },
            Event::DiskRecovered {
                now: Nanos::from_millis(7),
                disk: DiskId(0),
            },
        ];
        for e in events {
            let parsed = Event::from_json(&e.to_json());
            assert_eq!(parsed, Some(e), "{}", e.to_json());
        }
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let events = [
            Event::PolicyDecision {
                now: Nanos(17),
                cursor: 5,
            },
            Event::CacheHit {
                now: Nanos(18),
                block: BlockId(1),
            },
            Event::CacheMiss {
                now: Nanos(19),
                block: BlockId(2),
            },
            Event::Eviction {
                now: Nanos(20),
                block: BlockId(3),
            },
            Event::FetchIssued {
                now: Nanos(21),
                block: BlockId(4),
                disk: DiskId(2),
                demand: false,
                evicted: None,
            },
            Event::FetchIssued {
                now: Nanos(22),
                block: BlockId(5),
                disk: DiskId(0),
                demand: true,
                evicted: Some(BlockId(6)),
            },
            Event::WriteIssued {
                now: Nanos(23),
                block: BlockId(7),
                disk: DiskId(1),
            },
            Event::QueueDepth {
                now: Nanos(24),
                disk: DiskId(3),
                depth: 4,
            },
            Event::FetchStarted {
                now: Nanos(25),
                block: BlockId(8),
                disk: DiskId(0),
                write: false,
                head_cylinder: 77,
                completes: Nanos(99),
            },
            Event::FetchCompleted {
                now: Nanos(26),
                block: BlockId(8),
                disk: DiskId(0),
                write: false,
                service: Nanos(40),
                response: Nanos(60),
                head_cylinder: 77,
                depth: 0,
                faulted: false,
            },
            Event::FetchCompleted {
                now: Nanos(27),
                block: BlockId(8),
                disk: DiskId(0),
                write: true,
                service: Nanos(40),
                response: Nanos(60),
                head_cylinder: 77,
                depth: 1,
                faulted: true,
            },
            Event::StallBegin {
                now: Nanos(28),
                block: BlockId(9),
            },
            Event::StallEnd {
                now: Nanos(29),
                block: BlockId(9),
                stalled: Nanos(1_000),
                cause: StallCause::LatePrefetch,
                charged: Nanos(500),
            },
        ];
        for e in events {
            let parsed = Event::from_json(&e.to_json());
            assert_eq!(parsed, Some(e), "{}", e.to_json());
        }
        assert_eq!(Event::from_json("not json"), None);
        assert_eq!(Event::from_json(r#"{"event":"nope","t_ns":1}"#), None);
    }

    #[test]
    fn stall_causes_name_and_index_round_trip() {
        for (i, c) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(StallCause::from_name(c.name()), Some(c));
        }
        assert_eq!(StallCause::from_name("bogus"), None);
        assert_eq!(
            FaultCause::from_name("rejected"),
            Some(FaultCause::Rejected)
        );
        assert_eq!(FaultCause::from_name("bogus"), None);
    }

    #[test]
    fn disk_events_translate() {
        let e = Event::from_disk(
            Nanos::from_millis(1),
            DiskId(2),
            DiskEvent::Enqueued {
                block: BlockId(4),
                kind: ReqKind::Read,
                depth: 3,
            },
        );
        assert_eq!(
            e,
            Event::QueueDepth {
                now: Nanos::from_millis(1),
                disk: DiskId(2),
                depth: 3
            }
        );
        assert_eq!(e.kind(), "queue_depth");
        assert_eq!(e.time(), Nanos::from_millis(1));
    }
}
