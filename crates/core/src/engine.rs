//! The event-driven execution engine.
//!
//! The engine replays a trace against a disk array under one policy and
//! accounts elapsed time exactly as the paper's figures do: elapsed =
//! application compute + driver overhead + I/O stall.
//!
//! Timing model (§2.1, §2.6):
//!
//! * The application alternates compute and references; compute times come
//!   from the trace.
//! * Each issued I/O charges 0.5 ms of driver overhead to the CPU — it is
//!   inserted into the application's CPU timeline and delays subsequent
//!   references.
//! * A reference to a resident block is free (its cost is inside the
//!   traced compute times); a reference to a missing block stalls until
//!   the block arrives.
//! * Issuing a fetch reserves a cache frame immediately: the eviction
//!   victim becomes unavailable at issue time.
//!
//! Policies run at every decision point: simulation start, each
//! consumption, each fetch completion, and demand misses.

use crate::cache::{Cache, MissingTracker};
use crate::config::{DiskModelKind, SimConfig};
use crate::metrics::json_escape;
use crate::oracle::Oracle;
use crate::policy::{Policy, PolicyKind};
use crate::probe::{Event, NoopProbe, Probe};
use parcache_disk::coarse::CoarseDisk;
use parcache_disk::disk::DiskStats;
use parcache_disk::hp97560::Hp97560;
use parcache_disk::model::DiskModel;
use parcache_disk::uniform::UniformDisk;
use parcache_disk::{DiskArray, Layout};
use parcache_trace::Trace;
use parcache_types::{BlockId, Nanos};
use std::collections::VecDeque;

/// How many recent observations forestall's estimator keeps (§5: "the
/// most recent 100 disk access times and the most recent 100
/// interreference CPU times").
const HISTORY: usize = 100;

/// Recent fetch-time and compute-time observations, for forestall.
#[derive(Debug)]
pub struct FetchHistory {
    per_disk_fetch: Vec<VecDeque<Nanos>>,
    compute: VecDeque<Nanos>,
}

impl FetchHistory {
    fn new(disks: usize) -> FetchHistory {
        FetchHistory {
            per_disk_fetch: vec![VecDeque::with_capacity(HISTORY); disks],
            compute: VecDeque::with_capacity(HISTORY),
        }
    }

    fn push_fetch(&mut self, disk: usize, t: Nanos) {
        let q = &mut self.per_disk_fetch[disk];
        if q.len() == HISTORY {
            q.pop_front();
        }
        q.push_back(t);
    }

    fn push_compute(&mut self, t: Nanos) {
        if self.compute.len() == HISTORY {
            self.compute.pop_front();
        }
        self.compute.push_back(t);
    }

    /// Mean of the recent fetch times on `disk`, rounded to the nearest
    /// nanosecond, or `None` with no history.
    pub fn avg_fetch(&self, disk: usize) -> Option<Nanos> {
        let q = &self.per_disk_fetch[disk];
        if q.is_empty() {
            return None;
        }
        Some(q.iter().copied().sum::<Nanos>().div_rounded(q.len() as u64))
    }

    /// Mean of the recent inter-reference compute times, rounded to the
    /// nearest nanosecond, or `None`.
    pub fn avg_compute(&self) -> Option<Nanos> {
        if self.compute.is_empty() {
            return None;
        }
        Some(
            self.compute
                .iter()
                .copied()
                .sum::<Nanos>()
                .div_rounded(self.compute.len() as u64),
        )
    }

    /// The ratio of recent fetch-time sum to recent compute-time sum on
    /// `disk` — forestall's dynamic F — or `None` without history.
    pub fn fetch_compute_ratio(&self, disk: usize) -> Option<f64> {
        let fetch_sum: Nanos = self.per_disk_fetch[disk].iter().copied().sum();
        let compute_sum: Nanos = self.compute.iter().copied().sum();
        if self.per_disk_fetch[disk].is_empty() || compute_sum == Nanos::ZERO {
            return None;
        }
        // Normalize: both windows may hold fewer than HISTORY entries.
        let f_avg = fetch_sum.as_nanos() as f64 / self.per_disk_fetch[disk].len() as f64;
        let c_avg = compute_sum.as_nanos() as f64 / self.compute.len() as f64;
        Some(f_avg / c_avg)
    }
}

/// The mutable view a policy gets at a decision point.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Nanos,
    /// Index of the next unconsumed reference.
    pub cursor: usize,
    /// Full-knowledge oracle over the trace.
    pub oracle: &'a Oracle,
    /// Cache state.
    pub cache: &'a mut Cache,
    /// Index of missing blocks' next occurrences.
    pub missing: &'a mut MissingTracker,
    /// The disk array (free/busy queries).
    pub array: &'a mut DiskArray,
    /// The run configuration.
    pub config: &'a SimConfig,
    /// Recent fetch/compute observations (forestall's estimator).
    pub history: &'a FetchHistory,
    cpu_done: &'a mut Nanos,
    driver_time: &'a mut Nanos,
    fetches: &'a mut u64,
    /// Events generated inside policy calls, drained to the engine's
    /// probe afterwards (Ctx must stay non-generic: [`Policy`] is a trait
    /// object).
    probe_buf: &'a mut Vec<Event>,
    /// False when the engine's probe is [`NoopProbe`]; buffering is then
    /// skipped entirely.
    probe_on: bool,
    /// True inside [`Policy::on_miss`], so issued fetches are tagged
    /// demand rather than prefetch.
    demand: bool,
}

impl Ctx<'_> {
    /// Issues a fetch of `block`, evicting `evict` (required when the
    /// cache has no free frame). Charges driver overhead to the CPU
    /// timeline and enqueues the request on the block's disk.
    ///
    /// # Panics
    ///
    /// Panics on cache-invariant violations (fetching a resident block,
    /// evicting a non-resident block, overcommitting frames).
    pub fn issue_fetch(&mut self, block: BlockId, evict: Option<BlockId>) {
        self.cache.start_fetch(block, evict);
        self.missing
            .on_fetch_issued(block, self.cursor, self.oracle);
        if let Some(e) = evict {
            self.missing.on_evicted(e, self.cursor, self.oracle);
        }
        *self.driver_time += self.config.driver_overhead;
        *self.cpu_done = (*self.cpu_done).max(self.now) + self.config.driver_overhead;
        *self.fetches += 1;
        if self.probe_on {
            let now = self.now;
            if let Some(e) = evict {
                self.probe_buf.push(Event::Eviction { now, block: e });
            }
            self.probe_buf.push(Event::FetchIssued {
                now,
                block,
                disk: self.array.disk_of(block),
                demand: self.demand,
                evicted: evict,
            });
            let buf = &mut *self.probe_buf;
            self.array
                .enqueue_observed(now, block, |d, e| buf.push(Event::from_disk(now, d, e)));
        } else {
            self.array.enqueue(self.now, block);
        }
    }

    /// Total references in the trace.
    pub fn sequence_len(&self) -> usize {
        self.oracle.len()
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Trace name.
    pub trace: String,
    /// Policy name.
    pub policy: String,
    /// Array size.
    pub disks: usize,
    /// Total elapsed time (always `compute + driver + stall`).
    pub elapsed: Nanos,
    /// Application compute time (fixed by the trace).
    pub compute: Nanos,
    /// Driver overhead (0.5 ms per issued I/O).
    pub driver: Nanos,
    /// I/O stall time.
    pub stall: Nanos,
    /// Fetches issued.
    pub fetches: u64,
    /// Write-behind flushes issued (0 in the paper's read-only setting).
    pub writes: u64,
    /// Mean disk service time per request (includes write-behind
    /// flushes when the writes extension is enabled).
    pub avg_fetch_time: Nanos,
    /// Mean per-disk utilization (busy / elapsed, averaged over disks).
    pub avg_disk_utilization: f64,
    /// Per-disk statistics.
    pub per_disk: Vec<DiskStats>,
}

impl Report {
    /// Elapsed time in seconds (the paper's reporting unit).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Column names for [`to_csv_row`](Report::to_csv_row).
    pub fn csv_header() -> &'static str {
        "trace,policy,disks,elapsed_s,compute_s,driver_s,stall_s,fetches,writes,avg_fetch_ms,avg_disk_utilization"
    }

    /// This report as one CSV row (matching [`csv_header`]), for piping
    /// sweeps into external analysis tools.
    ///
    /// [`csv_header`]: Report::csv_header
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{:.4},{:.4}",
            self.trace,
            self.policy,
            self.disks,
            self.elapsed.as_secs_f64(),
            self.compute.as_secs_f64(),
            self.driver.as_secs_f64(),
            self.stall.as_secs_f64(),
            self.fetches,
            self.writes,
            self.avg_fetch_time.as_millis_f64(),
            self.avg_disk_utilization,
        )
    }

    /// This report as a JSON object (hand-rolled; the workspace has no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let per_disk: Vec<String> = self
            .per_disk
            .iter()
            .map(|d| {
                format!(
                    r#"{{"served":{},"busy_ns":{},"avg_service_ms":{:.4},"avg_response_ms":{:.4}}}"#,
                    d.served,
                    d.busy.as_nanos(),
                    d.avg_service().as_millis_f64(),
                    d.avg_response().as_millis_f64(),
                )
            })
            .collect();
        format!(
            concat!(
                r#"{{"trace":"{}","policy":"{}","disks":{},"#,
                r#""elapsed_s":{:.6},"compute_s":{:.6},"driver_s":{:.6},"stall_s":{:.6},"#,
                r#""fetches":{},"writes":{},"avg_fetch_ms":{:.4},"avg_disk_utilization":{:.4},"#,
                r#""per_disk":[{}]}}"#
            ),
            json_escape(&self.trace),
            json_escape(&self.policy),
            self.disks,
            self.elapsed.as_secs_f64(),
            self.compute.as_secs_f64(),
            self.driver.as_secs_f64(),
            self.stall.as_secs_f64(),
            self.fetches,
            self.writes,
            self.avg_fetch_time.as_millis_f64(),
            self.avg_disk_utilization,
            per_disk.join(","),
        )
    }
}

/// Builds the drive-model factory for a configuration.
fn model_factory(kind: DiskModelKind) -> Box<dyn FnMut() -> Box<dyn DiskModel>> {
    match kind {
        DiskModelKind::Hp97560 => Box::new(|| Box::new(Hp97560::new())),
        DiskModelKind::Hp97560NoReadahead => Box::new(|| Box::new(Hp97560::without_readahead())),
        DiskModelKind::Coarse => Box::new(|| Box::new(CoarseDisk::new())),
        DiskModelKind::Uniform(f) => Box::new(move || Box::new(UniformDisk::new(f))),
    }
}

/// Runs `trace` under `policy` and `config`; convenience wrapper that
/// builds the policy from its kind.
pub fn simulate(trace: &Trace, policy: PolicyKind, config: &SimConfig) -> Report {
    simulate_probed(trace, policy, config, &mut NoopProbe)
}

/// Runs `trace` under an already-constructed policy.
pub fn simulate_with(trace: &Trace, policy: &mut dyn Policy, config: &SimConfig) -> Report {
    simulate_with_probed(trace, policy, config, &mut NoopProbe)
}

/// [`simulate`], reporting every simulation [`Event`] to `probe`.
pub fn simulate_probed<P: Probe>(
    trace: &Trace,
    policy: PolicyKind,
    config: &SimConfig,
    probe: &mut P,
) -> Report {
    let mut p = policy.build(trace, config);
    simulate_with_probed(trace, p.as_mut(), config, probe)
}

/// [`simulate_with`], reporting every simulation [`Event`] to `probe`.
pub fn simulate_with_probed<P: Probe>(
    trace: &Trace,
    policy: &mut dyn Policy,
    config: &SimConfig,
    probe: &mut P,
) -> Report {
    Engine::new(trace, config).run(policy, probe)
}

struct Engine<'t> {
    trace: &'t Trace,
    config: &'t SimConfig,
    oracle: Oracle,
    cache: Cache,
    missing: MissingTracker,
    array: DiskArray,
    history: FetchHistory,
    now: Nanos,
    cursor: usize,
    cpu_done: Nanos,
    driver_time: Nanos,
    fetches: u64,
    writes: u64,
    probe_buf: Vec<Event>,
}

impl<'t> Engine<'t> {
    fn new(trace: &'t Trace, config: &'t SimConfig) -> Engine<'t> {
        let layout = Layout::striped(config.disks);
        // Policies only know what the application disclosed: under
        // incomplete hints their oracle indexes the hinted subsequence.
        let oracle = match config.hints {
            crate::hints::HintSpec::Full => Oracle::new(trace, layout),
            ref spec => {
                let mask = spec.mask(trace.requests.len());
                crate::hints::hinted_oracle(trace, layout, &mask)
            }
        };
        let missing = MissingTracker::new(&oracle);
        let array = DiskArray::new(
            config.disks,
            config.discipline,
            model_factory(config.disk_model),
        );
        let mut cache = Cache::new(config.cache_blocks);
        if config.hints.nominal_fraction() < 1.0 {
            // Value blocks with no disclosed future by LRU recency, as
            // TIP2 does for unhinted pages.
            cache.enable_lru_estimate();
        }
        Engine {
            trace,
            config,
            oracle,
            cache,
            missing,
            array,
            history: FetchHistory::new(config.disks),
            now: Nanos::ZERO,
            cursor: 0,
            cpu_done: Nanos::ZERO,
            driver_time: Nanos::ZERO,
            fetches: 0,
            writes: 0,
            probe_buf: Vec::new(),
        }
    }

    /// Lets the policy act at the current instant.
    fn decide<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        if P::ENABLED {
            probe.on_event(&Event::PolicyDecision {
                now: self.now,
                cursor: self.cursor,
            });
        }
        let mut ctx = Ctx {
            now: self.now,
            cursor: self.cursor,
            oracle: &self.oracle,
            cache: &mut self.cache,
            missing: &mut self.missing,
            array: &mut self.array,
            config: self.config,
            history: &self.history,
            cpu_done: &mut self.cpu_done,
            driver_time: &mut self.driver_time,
            fetches: &mut self.fetches,
            probe_buf: &mut self.probe_buf,
            probe_on: P::ENABLED,
            demand: false,
        };
        policy.decide(&mut ctx);
        self.drain_probe_buf(probe);
    }

    /// Asks the policy to handle a demand miss.
    fn miss<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P, block: BlockId) {
        let mut ctx = Ctx {
            now: self.now,
            cursor: self.cursor,
            oracle: &self.oracle,
            cache: &mut self.cache,
            missing: &mut self.missing,
            array: &mut self.array,
            config: self.config,
            history: &self.history,
            cpu_done: &mut self.cpu_done,
            driver_time: &mut self.driver_time,
            fetches: &mut self.fetches,
            probe_buf: &mut self.probe_buf,
            probe_on: P::ENABLED,
            demand: true,
        };
        policy.on_miss(&mut ctx, block);
        self.drain_probe_buf(probe);
    }

    /// Forwards events buffered during a policy call to the probe.
    fn drain_probe_buf<P: Probe>(&mut self, probe: &mut P) {
        if P::ENABLED {
            for e in self.probe_buf.drain(..) {
                probe.on_event(&e);
            }
        }
    }

    /// Processes the earliest pending disk completion (which must exist),
    /// advancing `now` to it.
    fn pop_completion<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        let (t, d) = self
            .array
            .next_event()
            .expect("waiting with no pending I/O — policy deadlock");
        debug_assert!(t >= self.now);
        self.now = t;
        let done = if P::ENABLED {
            let buf = &mut self.probe_buf;
            let done = self
                .array
                .complete_observed(t, d, |disk, e| buf.push(Event::from_disk(t, disk, e)));
            self.drain_probe_buf(probe);
            done
        } else {
            self.array.complete(t, d)
        };
        match done.kind {
            parcache_disk::disk::ReqKind::Read => {
                self.history.push_fetch(d.index(), done.service);
                self.cache
                    .complete_fetch(done.block, self.cursor, &self.oracle);
            }
            // A finished write frees disk bandwidth but changes nothing
            // in the cache: the block stayed available throughout.
            parcache_disk::disk::ReqKind::Write => {}
        }
        self.decide(policy, probe);
    }

    /// Advances to `cpu_done`, processing any completions on the way.
    /// Completions may add driver work, pushing `cpu_done` out further.
    fn advance_cpu<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        while let Some((t, _)) = self.array.next_event() {
            if t > self.cpu_done {
                break;
            }
            self.pop_completion(policy, probe);
        }
        self.now = self.cpu_done;
    }

    fn run<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) -> Report {
        // Initial decision point: prefetching can begin at time zero.
        self.decide(policy, probe);

        for i in 0..self.trace.requests.len() {
            let req = self.trace.requests[i];
            // The block about to be referenced may not be evicted (see
            // Cache::pin); critical under incomplete hints.
            self.cache.pin(Some(req.block));
            // The application computes before the reference.
            self.history.push_compute(req.compute);
            self.cpu_done = self.cpu_done.max(self.now) + req.compute;
            self.advance_cpu(policy, probe);

            // A stall starts if the block has not arrived by the time the
            // application references it. The pin above guarantees a
            // resident block stays resident, so this is decided once.
            let stall_from = if P::ENABLED {
                let resident = self.cache.resident(req.block);
                let e = if resident {
                    Event::CacheHit {
                        now: self.now,
                        block: req.block,
                    }
                } else {
                    Event::CacheMiss {
                        now: self.now,
                        block: req.block,
                    }
                };
                probe.on_event(&e);
                if resident {
                    None
                } else {
                    probe.on_event(&Event::StallBegin {
                        now: self.now,
                        block: req.block,
                    });
                    Some(self.now)
                }
            } else {
                None
            };

            // The reference: stall until the block is available and the
            // CPU backlog (driver work issued meanwhile) has drained.
            loop {
                if self.cache.resident(req.block) {
                    if self.now < self.cpu_done {
                        self.advance_cpu(policy, probe);
                        continue;
                    }
                    break;
                }
                if !self.cache.inflight(req.block) {
                    self.miss(policy, probe, req.block);
                }
                self.pop_completion(policy, probe);
            }

            if P::ENABLED {
                if let Some(from) = stall_from {
                    probe.on_event(&Event::StallEnd {
                        now: self.now,
                        block: req.block,
                        stalled: self.now - from,
                    });
                }
            }

            // Consume. The reference is satisfied, so the pin lifts: the
            // just-used block is an ordinary eviction candidate again.
            self.cache.pin(None);
            self.cache.on_reference(req.block, i, &self.oracle);
            self.cursor = i + 1;
            // Write-behind extension: periodically flush the block the
            // application just updated. The app does not wait for it, but
            // it consumes disk bandwidth and driver CPU.
            if let Some(period) = self.config.write_behind_period {
                if (i + 1) % period == 0 {
                    self.writes += 1;
                    self.driver_time += self.config.driver_overhead;
                    self.cpu_done = self.cpu_done.max(self.now) + self.config.driver_overhead;
                    if P::ENABLED {
                        let now = self.now;
                        probe.on_event(&Event::WriteIssued {
                            now,
                            block: req.block,
                            disk: self.array.disk_of(req.block),
                        });
                        let buf = &mut self.probe_buf;
                        self.array.enqueue_write_observed(now, req.block, |d, e| {
                            buf.push(Event::from_disk(now, d, e))
                        });
                        self.drain_probe_buf(probe);
                    } else {
                        self.array.enqueue_write(self.now, req.block);
                    }
                }
            }
            self.decide(policy, probe);
        }

        // Driver overhead charged at or after the final reference
        // (write-behind flushes on the last consume, fetches issued by
        // the final decide()) sits in the CPU backlog: it is already in
        // `driver_time` but the clock has not advanced over it. Drain it
        // so `elapsed` covers every charged nanosecond.
        if self.cpu_done > self.now {
            self.advance_cpu(policy, probe);
        }

        let elapsed = self.now;
        let compute: Nanos = self.trace.requests.iter().map(|r| r.compute).sum();
        // Checked, not saturating: a component exceeding the total is an
        // accounting bug and must fail loudly, not clamp stall to zero.
        let stall = elapsed
            .checked_sub(compute)
            .and_then(|rest| rest.checked_sub(self.driver_time))
            .unwrap_or_else(|| {
                panic!(
                    "accounting identity violated: elapsed {} < compute {} + driver {}",
                    elapsed, compute, self.driver_time
                )
            });
        Report {
            trace: self.trace.name.clone(),
            policy: policy.name().to_string(),
            disks: self.config.disks,
            elapsed,
            compute,
            driver: self.driver_time,
            stall,
            fetches: self.fetches,
            writes: self.writes,
            avg_fetch_time: self.array.avg_fetch_time(),
            avg_disk_utilization: self.array.avg_utilization(elapsed),
            // stats_at, not stats: a request still on the platter when the
            // run ends contributes its partial service time to `busy`.
            per_disk: self.array.stats_at(elapsed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_trace::Request;

    fn unit_trace(blocks: &[u64], compute_ms: u64) -> Trace {
        Trace::new(
            "unit",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(compute_ms),
                })
                .collect(),
            4,
        )
    }

    fn theory_config(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c
    }

    #[test]
    fn demand_fetch_timing_matches_theory() {
        // One block, compute 1ms, fetch 5ms: elapsed = 1 (compute) + 5
        // (demand stall) = 6ms.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.elapsed, Nanos::from_millis(6));
        assert_eq!(r.compute, Nanos::from_millis(1));
        assert_eq!(r.stall, Nanos::from_millis(5));
        assert_eq!(r.fetches, 1);
    }

    #[test]
    fn cache_hit_costs_nothing_extra() {
        let t = unit_trace(&[0, 0, 0], 2);
        let cfg = theory_config(1, 4, 5);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        // One fetch (5ms stall) + 3 x 2ms compute.
        assert_eq!(r.elapsed, Nanos::from_millis(11));
        assert_eq!(r.fetches, 1);
    }

    #[test]
    fn breakdown_always_sums_to_elapsed() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 1);
        for kind in PolicyKind::ALL {
            let mut cfg = theory_config(2, 3, 4);
            cfg.driver_overhead = Nanos::from_micros(500);
            let r = simulate(&t, kind, &cfg);
            assert_eq!(
                r.elapsed,
                r.compute + r.driver + r.stall,
                "{kind} breakdown broken"
            );
            assert_eq!(r.compute, Nanos::from_millis(8), "{kind}");
        }
    }

    #[test]
    fn driver_overhead_is_charged_per_fetch() {
        let t = unit_trace(&[0, 1], 1);
        let mut cfg = theory_config(1, 4, 5);
        cfg.driver_overhead = Nanos::from_millis(1);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.fetches, 2);
        assert_eq!(r.driver, Nanos::from_millis(2));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn prefetching_beats_demand_on_sequential_io_bound_work() {
        // 32 distinct blocks on 2 disks, tiny compute: demand stalls on
        // every block; any prefetcher overlaps fetches with stalls.
        let blocks: Vec<u64> = (0..32).collect();
        let t = unit_trace(&blocks, 1);
        let cfg = theory_config(2, 8, 10);
        let demand = simulate(&t, PolicyKind::Demand, &cfg);
        for kind in PolicyKind::PREFETCHING {
            let r = simulate(&t, kind, &cfg);
            assert!(
                r.elapsed < demand.elapsed,
                "{kind}: {} !< {}",
                r.elapsed,
                demand.elapsed
            );
        }
    }

    #[test]
    fn all_policies_serve_every_reference() {
        let blocks: Vec<u64> = (0..40).map(|i| i % 10).collect();
        let t = unit_trace(&blocks, 1);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(3, 4, 7);
            let r = simulate(&t, kind, &cfg);
            assert!(r.elapsed >= r.compute, "{kind}");
            assert!(r.fetches >= 10, "{kind} fetched {} < distinct", r.fetches);
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let t = unit_trace(&[0, 1], 4);
        let r = simulate(&t, PolicyKind::Demand, &theory_config(1, 4, 2));
        let header_cols = Report::csv_header().split(',').count();
        let row = r.to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("unit,demand,1,"));
    }

    #[test]
    fn fetch_history_window_and_ratio() {
        let mut h = FetchHistory::new(2);
        assert_eq!(h.avg_fetch(0), None);
        assert_eq!(h.avg_compute(), None);
        assert_eq!(h.fetch_compute_ratio(0), None);
        for _ in 0..150 {
            h.push_fetch(0, Nanos::from_millis(10));
            h.push_compute(Nanos::from_millis(2));
        }
        // Window capped at 100; averages are exact.
        assert_eq!(h.avg_fetch(0), Some(Nanos::from_millis(10)));
        assert_eq!(h.avg_compute(), Some(Nanos::from_millis(2)));
        let f = h.fetch_compute_ratio(0).unwrap();
        assert!((f - 5.0).abs() < 1e-9, "{f}");
        // Disk 1 has no history.
        assert_eq!(h.avg_fetch(1), None);
        assert_eq!(h.fetch_compute_ratio(1), None);
    }

    #[test]
    fn unhinted_references_become_demand_misses() {
        use crate::hints::HintSpec;
        let t = unit_trace(&[0, 1, 2, 3], 8);
        let mut cfg = theory_config(1, 8, 4);
        cfg.hints = HintSpec::None;
        for kind in PolicyKind::ALL {
            let r = simulate(&t, kind, &cfg);
            // Nothing disclosed: no prefetching possible, every block
            // demand-missed with a full F=4 stall.
            assert_eq!(r.fetches, 4, "{kind}");
            assert_eq!(r.stall, Nanos::from_millis(16), "{kind}");
        }
    }

    #[test]
    fn trailing_write_behind_driver_work_lands_in_elapsed() {
        // The final reference triggers a write-behind flush whose driver
        // overhead is charged to the CPU timeline after the last consume.
        // Before the end-of-run drain, that overhead sat in `driver` but
        // not in `elapsed`, breaking elapsed = compute + driver + stall
        // (the saturating subtraction clamped stall instead of failing).
        let t = unit_trace(&[0, 1], 5);
        let mut cfg = theory_config(2, 4, 3);
        cfg.driver_overhead = Nanos::from_millis(1);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Aggressive, &cfg);
        // Both blocks prefetched at t=0 (2ms driver), hidden under the
        // 10ms of compute; the flush after the last reference adds 1ms of
        // driver work that the clock must drain: elapsed = 10 + 3 + 0.
        assert_eq!(r.writes, 1);
        assert_eq!(r.driver, Nanos::from_millis(3));
        assert_eq!(r.compute, Nanos::from_millis(10));
        assert_eq!(r.stall, Nanos::ZERO);
        assert_eq!(r.elapsed, Nanos::from_millis(13));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn trailing_drain_holds_for_demand_with_mid_run_stall() {
        // Same shape but with a real stall in the middle, checking the
        // drain composes with nonzero stall: the cold miss at t=4 waits
        // 1ms of driver + 2ms of stall; the final flush adds 1ms more
        // driver that elapsed must cover.
        let t = unit_trace(&[0, 0], 4);
        let mut cfg = theory_config(1, 4, 3);
        cfg.driver_overhead = Nanos::from_millis(1);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.writes, 1);
        assert_eq!(r.compute, Nanos::from_millis(8));
        assert_eq!(r.driver, Nanos::from_millis(2));
        assert_eq!(r.stall, Nanos::from_millis(2));
        assert_eq!(r.elapsed, Nanos::from_millis(12));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn fetch_history_averages_round_to_nearest() {
        // 1ns and 2ns observations average to 1.5ns: div_rounded keeps
        // the nearest nanosecond (2) where truncating `/` dropped to 1.
        let mut h = FetchHistory::new(1);
        h.push_fetch(0, Nanos(1));
        h.push_fetch(0, Nanos(2));
        assert_eq!(h.avg_fetch(0), Some(Nanos(2)));
        h.push_compute(Nanos(1));
        h.push_compute(Nanos(2));
        assert_eq!(h.avg_compute(), Some(Nanos(2)));
    }

    #[test]
    fn write_behind_consumes_bandwidth_without_stalling_directly() {
        let t = unit_trace(&[0, 0, 0, 0, 0, 0, 0, 0], 4);
        let mut cfg = theory_config(1, 4, 3);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.writes, 4);
        assert_eq!(r.fetches, 1);
        // All-hit trace: the single cold miss stalls (3ms); the four
        // writes proceed in the background and add no stall.
        assert_eq!(r.stall, Nanos::from_millis(3));
    }
}
