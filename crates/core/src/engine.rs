//! The event-driven execution engine.
//!
//! The engine replays a trace against a disk array under one policy and
//! accounts elapsed time exactly as the paper's figures do: elapsed =
//! application compute + driver overhead + I/O stall.
//!
//! Timing model (§2.1, §2.6):
//!
//! * The application alternates compute and references; compute times come
//!   from the trace.
//! * Each issued I/O charges 0.5 ms of driver overhead to the CPU — it is
//!   inserted into the application's CPU timeline and delays subsequent
//!   references.
//! * A reference to a resident block is free (its cost is inside the
//!   traced compute times); a reference to a missing block stalls until
//!   the block arrives.
//! * Issuing a fetch reserves a cache frame immediately: the eviction
//!   victim becomes unavailable at issue time.
//!
//! Policies run at every decision point: simulation start, each
//! consumption, each fetch completion, and demand misses.

use crate::cache::{Cache, MissingTracker};
use crate::config::{DiskModelKind, SimConfig};
use crate::metrics::json_escape;
use crate::oracle::Oracle;
use crate::policy::{Policy, PolicyKind};
use crate::predict::HintStats;
use crate::probe::{Event, FaultCause, NoopProbe, Probe, StallCause};
use parcache_disk::coarse::CoarseDisk;
use parcache_disk::disk::DiskStats;
use parcache_disk::fault::FaultyDisk;
use parcache_disk::hp97560::Hp97560;
use parcache_disk::model::DiskModel;
use parcache_disk::uniform::UniformDisk;
use parcache_disk::{DiskArray, Layout};
use parcache_trace::Trace;
use parcache_types::{BlockId, DiskId, Nanos};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// How many recent observations forestall's estimator keeps (§5: "the
/// most recent 100 disk access times and the most recent 100
/// interreference CPU times").
const HISTORY: usize = 100;

/// Recent fetch-time and compute-time observations, for forestall.
///
/// Window sums are maintained incrementally — an observation is added on
/// push and subtracted when it slides out — so the averages and ratio the
/// estimator reads at every decision point are O(1) instead of re-summing
/// up to [`HISTORY`] entries. The arithmetic is exact (`u64` adds and
/// subtracts), so results are bit-identical to re-summing the window.
#[derive(Debug)]
pub struct FetchHistory {
    per_disk_fetch: Vec<VecDeque<Nanos>>,
    per_disk_sum: Vec<Nanos>,
    compute: VecDeque<Nanos>,
    compute_sum: Nanos,
}

impl FetchHistory {
    fn new(disks: usize) -> FetchHistory {
        FetchHistory {
            per_disk_fetch: vec![VecDeque::with_capacity(HISTORY); disks],
            per_disk_sum: vec![Nanos::ZERO; disks],
            compute: VecDeque::with_capacity(HISTORY),
            compute_sum: Nanos::ZERO,
        }
    }

    fn push_fetch(&mut self, disk: usize, t: Nanos) {
        let q = &mut self.per_disk_fetch[disk];
        if q.len() == HISTORY {
            self.per_disk_sum[disk] -= q.pop_front().expect("non-empty window");
        }
        q.push_back(t);
        self.per_disk_sum[disk] += t;
    }

    fn push_compute(&mut self, t: Nanos) {
        if self.compute.len() == HISTORY {
            self.compute_sum -= self.compute.pop_front().expect("non-empty window");
        }
        self.compute.push_back(t);
        self.compute_sum += t;
    }

    /// Mean of the recent fetch times on `disk`, rounded to the nearest
    /// nanosecond, or `None` with no history.
    pub fn avg_fetch(&self, disk: usize) -> Option<Nanos> {
        let q = &self.per_disk_fetch[disk];
        if q.is_empty() {
            return None;
        }
        Some(self.per_disk_sum[disk].div_rounded(q.len() as u64))
    }

    /// Mean of the recent inter-reference compute times, rounded to the
    /// nearest nanosecond, or `None`.
    pub fn avg_compute(&self) -> Option<Nanos> {
        if self.compute.is_empty() {
            return None;
        }
        Some(self.compute_sum.div_rounded(self.compute.len() as u64))
    }

    /// The ratio of recent fetch-time sum to recent compute-time sum on
    /// `disk` — forestall's dynamic F — or `None` without history.
    pub fn fetch_compute_ratio(&self, disk: usize) -> Option<f64> {
        if self.per_disk_fetch[disk].is_empty() || self.compute_sum == Nanos::ZERO {
            return None;
        }
        // Normalize: both windows may hold fewer than HISTORY entries.
        let f_avg =
            self.per_disk_sum[disk].as_nanos() as f64 / self.per_disk_fetch[disk].len() as f64;
        let c_avg = self.compute_sum.as_nanos() as f64 / self.compute.len() as f64;
        Some(f_avg / c_avg)
    }
}

/// The mutable view a policy gets at a decision point.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Nanos,
    /// Index of the next unconsumed reference.
    pub cursor: usize,
    /// Full-knowledge oracle over the trace.
    pub oracle: &'a Oracle,
    /// Cache state.
    pub cache: &'a mut Cache,
    /// Index of missing blocks' next occurrences.
    pub missing: &'a mut MissingTracker,
    /// The disk array (free/busy queries).
    pub array: &'a mut DiskArray,
    /// The run configuration.
    pub config: &'a SimConfig,
    /// Recent fetch/compute observations (forestall's estimator).
    pub history: &'a FetchHistory,
    cpu_done: &'a mut Nanos,
    driver_time: &'a mut Nanos,
    fetches: &'a mut u64,
    /// Events generated inside policy calls, drained to the engine's
    /// probe afterwards (Ctx must stay non-generic: [`Policy`] is a trait
    /// object).
    probe_buf: &'a mut Vec<Event>,
    /// False when the engine's probe is [`NoopProbe`]; buffering is then
    /// skipped entirely.
    probe_on: bool,
    /// True inside [`Policy::on_miss`], so issued fetches are tagged
    /// demand rather than prefetch.
    demand: bool,
    /// Fetches whose enqueue an out-of-service drive rejected during this
    /// policy call; the engine converts them into driver faults after the
    /// call returns (see `Engine::settle_rejections`).
    rejected: &'a mut Vec<BlockId>,
    /// One bit per compact block index, set on eviction: stall provenance
    /// uses it to tell a re-miss on a once-resident block
    /// ([`StallCause::EvictionRefetch`]) from a plain
    /// [`StallCause::NoPrefetch`] miss.
    evicted_ever: &'a mut Vec<u64>,
}

impl Ctx<'_> {
    /// Issues a fetch of `block`, evicting `evict` (required when the
    /// cache has no free frame). Convenience wrapper over
    /// [`Ctx::issue_fetch_idx`] for callers holding `BlockId`s; costs one
    /// hash lookup per id.
    ///
    /// # Panics
    ///
    /// Panics on cache-invariant violations (fetching a resident block,
    /// evicting a non-resident block, overcommitting frames), or if a
    /// block is outside the oracle's indexed universe.
    pub fn issue_fetch(&mut self, block: BlockId, evict: Option<BlockId>) {
        let idx = self
            .oracle
            .index_of(block)
            .expect("fetched block outside the indexed universe");
        let evict_idx = evict.map(|e| {
            self.oracle
                .index_of(e)
                .expect("evicted block outside the indexed universe")
        });
        self.issue_fetch_idx(idx, evict_idx);
    }

    /// Issues a fetch of block `idx`, evicting `evict` (required when the
    /// cache has no free frame). Charges driver overhead to the CPU
    /// timeline and enqueues the request on the block's disk. This is the
    /// hot-path entry: everything stays in compact-index space except the
    /// O(1) index-to-block translations the disks and probes need.
    ///
    /// # Panics
    ///
    /// Panics on cache-invariant violations (fetching a resident block,
    /// evicting a non-resident block, overcommitting frames).
    pub fn issue_fetch_idx(&mut self, idx: u32, evict_idx: Option<u32>) {
        let block = self.oracle.block_of(idx);
        let evict = evict_idx.map(|e| self.oracle.block_of(e));
        self.cache.start_fetch(idx, evict_idx);
        self.missing
            .on_fetch_issued_idx(idx, self.cursor, self.oracle);
        if let Some(e) = evict_idx {
            self.missing.on_evicted_idx(e, self.cursor, self.oracle);
            // Every eviction of a resident block flows through here
            // (abandoning an in-flight fetch is not an eviction: the
            // block was never resident).
            self.evicted_ever[e as usize / 64] |= 1 << (e % 64);
        }
        *self.driver_time += self.config.driver_overhead;
        *self.cpu_done = (*self.cpu_done).max(self.now) + self.config.driver_overhead;
        *self.fetches += 1;
        let outcome = if self.probe_on {
            let now = self.now;
            if let Some(e) = evict {
                self.probe_buf.push(Event::Eviction { now, block: e });
            }
            self.probe_buf.push(Event::FetchIssued {
                now,
                block,
                disk: self.array.disk_of(block),
                demand: self.demand,
                evicted: evict,
            });
            let buf = &mut *self.probe_buf;
            self.array
                .enqueue_observed(now, block, |d, e| buf.push(Event::from_disk(now, d, e)))
        } else {
            self.array.enqueue(self.now, block)
        };
        if outcome.is_rejected() {
            // The drive is mid-outage: the request never reached its
            // queue. The frame stays reserved; the driver retries (or
            // abandons) once the policy call returns.
            self.rejected.push(block);
        }
    }

    /// Total references in the trace.
    pub fn sequence_len(&self) -> usize {
        self.oracle.len()
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Trace name.
    pub trace: String,
    /// Policy name.
    pub policy: String,
    /// Array size.
    pub disks: usize,
    /// Total elapsed time (always `compute + driver + stall`).
    pub elapsed: Nanos,
    /// Application compute time (fixed by the trace).
    pub compute: Nanos,
    /// Driver overhead (0.5 ms per issued I/O).
    pub driver: Nanos,
    /// I/O stall time.
    pub stall: Nanos,
    /// The stall decomposed by cause. The engine attributes every charged
    /// stall nanosecond to exactly one [`StallCause`], so
    /// `stall_by_cause.total() == stall` always (panic-enforced at the
    /// end of every run).
    pub stall_by_cause: StallBreakdown,
    /// Fetches issued.
    pub fetches: u64,
    /// Write-behind flushes issued (0 in the paper's read-only setting).
    pub writes: u64,
    /// Mean disk service time per request (includes write-behind
    /// flushes when the writes extension is enabled).
    pub avg_fetch_time: Nanos,
    /// Mean per-disk utilization (busy / elapsed, averaged over disks).
    pub avg_disk_utilization: f64,
    /// Per-disk statistics.
    pub per_disk: Vec<DiskStats>,
    /// Fault and retry accounting; `Some` exactly when the run's
    /// [`FaultPlan`](parcache_disk::fault::FaultPlan) was non-empty, so
    /// healthy-run reports render byte-identically to reports from before
    /// fault support existed.
    pub fault: Option<FaultSummary>,
    /// Prediction accounting; `Some` exactly when the run used a
    /// predicted hint source ([`HintMode::Predicted`]), so oracle-hint
    /// reports render byte-identically to reports from before hint
    /// sources existed.
    ///
    /// [`HintMode::Predicted`]: crate::predict::HintMode::Predicted
    pub hints: Option<HintStats>,
}

/// Fault, retry, and degraded-time accounting for a run executed under a
/// non-empty fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Faults charged to requests: media errors on completion plus
    /// outage rejections at enqueue. Always equals
    /// `retries + abandoned` — every fault is answered by exactly one
    /// retry or one abandonment.
    pub faults_injected: u64,
    /// Driver retries issued after backoff.
    pub retries: u64,
    /// Requests the driver gave up on (retry budget or timeout spent,
    /// plus every faulted best-effort write).
    pub abandoned: u64,
    /// Declared degraded time (fail-slow or outage windows) per disk,
    /// clipped to the run's elapsed time.
    pub per_disk_degraded: Vec<Nanos>,
    /// Fraction of disk-time the array was out of its declared degraded
    /// windows: `1 − Σ degraded / (disks × elapsed)`.
    pub availability: f64,
}

impl FaultSummary {
    /// This summary as a JSON object.
    pub fn to_json(&self) -> String {
        let degraded: Vec<String> = self
            .per_disk_degraded
            .iter()
            .map(|d| d.as_nanos().to_string())
            .collect();
        format!(
            r#"{{"faults_injected":{},"retries":{},"abandoned":{},"per_disk_degraded_ns":[{}],"availability":{:.6}}}"#,
            self.faults_injected,
            self.retries,
            self.abandoned,
            degraded.join(","),
            self.availability,
        )
    }

    /// Total declared degraded time across the array.
    pub fn total_degraded(&self) -> Nanos {
        self.per_disk_degraded.iter().copied().sum()
    }
}

/// Stall time decomposed by [`StallCause`].
///
/// Each stall window is charged to exactly one cause, and only the part
/// of the window not accounted to driver overhead is charged — so the
/// five components sum to the report's `stall` field exactly, with no
/// rounding or residue. See DESIGN.md "Stall provenance".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBreakdown {
    /// A fetch was issued but still in flight at the reference, with the
    /// block itself on the platter of a healthy drive.
    pub late_prefetch: Nanos,
    /// A demand miss on a block never fetched (nor previously resident).
    pub no_prefetch: Nanos,
    /// The awaited fetch was queued behind other work, or its drive was
    /// inside a declared degraded window.
    pub congestion: Nanos,
    /// The stall overlapped driver retry/backoff for the awaited block.
    pub retry: Nanos,
    /// A demand miss on a block that was resident earlier, then evicted.
    pub eviction_refetch: Nanos,
}

impl StallBreakdown {
    /// All-zero breakdown (the state before any stall is charged).
    pub const ZERO: StallBreakdown = StallBreakdown {
        late_prefetch: Nanos::ZERO,
        no_prefetch: Nanos::ZERO,
        congestion: Nanos::ZERO,
        retry: Nanos::ZERO,
        eviction_refetch: Nanos::ZERO,
    };

    /// The component charged to `cause`.
    pub fn get(&self, cause: StallCause) -> Nanos {
        match cause {
            StallCause::LatePrefetch => self.late_prefetch,
            StallCause::NoPrefetch => self.no_prefetch,
            StallCause::DiskCongestion => self.congestion,
            StallCause::FaultRetry => self.retry,
            StallCause::EvictionRefetch => self.eviction_refetch,
        }
    }

    /// Charges `t` to `cause`.
    pub fn add(&mut self, cause: StallCause, t: Nanos) {
        match cause {
            StallCause::LatePrefetch => self.late_prefetch += t,
            StallCause::NoPrefetch => self.no_prefetch += t,
            StallCause::DiskCongestion => self.congestion += t,
            StallCause::FaultRetry => self.retry += t,
            StallCause::EvictionRefetch => self.eviction_refetch += t,
        }
    }

    /// Sum of all components; equals the report's `stall` exactly.
    pub fn total(&self) -> Nanos {
        StallCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// This breakdown as a JSON object keyed by cause name, in
    /// nanoseconds.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = StallCause::ALL
            .iter()
            .map(|&c| format!(r#""{}":{}"#, c.name(), self.get(c).as_nanos()))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

impl Default for StallBreakdown {
    fn default() -> StallBreakdown {
        StallBreakdown::ZERO
    }
}

impl Report {
    /// Elapsed time in seconds (the paper's reporting unit).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Column names for [`to_csv_row`](Report::to_csv_row).
    pub fn csv_header() -> &'static str {
        "trace,policy,disks,elapsed_s,compute_s,driver_s,stall_s,fetches,writes,avg_fetch_ms,avg_disk_utilization"
    }

    /// Column names for rows from faulted runs, which carry five extra
    /// fault-accounting columns.
    pub fn csv_header_faulted() -> &'static str {
        "trace,policy,disks,elapsed_s,compute_s,driver_s,stall_s,fetches,writes,avg_fetch_ms,avg_disk_utilization,faults_injected,retries,abandoned,degraded_s,availability"
    }

    /// This report as one CSV row — matching [`csv_header`] for a healthy
    /// run, [`csv_header_faulted`] when the run had a fault plan.
    ///
    /// [`csv_header`]: Report::csv_header
    /// [`csv_header_faulted`]: Report::csv_header_faulted
    pub fn to_csv_row(&self) -> String {
        let mut row = format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{:.4},{:.4}",
            self.trace,
            self.policy,
            self.disks,
            self.elapsed.as_secs_f64(),
            self.compute.as_secs_f64(),
            self.driver.as_secs_f64(),
            self.stall.as_secs_f64(),
            self.fetches,
            self.writes,
            self.avg_fetch_time.as_millis_f64(),
            self.avg_disk_utilization,
        );
        if let Some(f) = &self.fault {
            row.push_str(&format!(
                ",{},{},{},{:.6},{:.6}",
                f.faults_injected,
                f.retries,
                f.abandoned,
                f.total_degraded().as_secs_f64(),
                f.availability,
            ));
        }
        row
    }

    /// Column names for [`to_csv_row_explain`](Report::to_csv_row_explain):
    /// the default columns plus one per stall cause. Kept separate from
    /// [`csv_header`](Report::csv_header) so the default CSV schema stays
    /// byte-identical — explain columns appear only behind `--explain`.
    pub fn csv_header_explain(faulted: bool) -> String {
        let base = if faulted {
            Report::csv_header_faulted()
        } else {
            Report::csv_header()
        };
        let causes: Vec<String> = StallCause::ALL
            .iter()
            .map(|c| format!("stall_{}_s", c.name()))
            .collect();
        format!("{},{}", base, causes.join(","))
    }

    /// This report as one CSV row matching
    /// [`csv_header_explain`](Report::csv_header_explain).
    pub fn to_csv_row_explain(&self) -> String {
        let causes: Vec<String> = StallCause::ALL
            .iter()
            .map(|&c| format!("{:.6}", self.stall_by_cause.get(c).as_secs_f64()))
            .collect();
        format!("{},{}", self.to_csv_row(), causes.join(","))
    }

    /// This report as a JSON object (hand-rolled; the workspace has no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let per_disk: Vec<String> = self
            .per_disk
            .iter()
            .map(|d| {
                let mut s = format!(
                    r#"{{"served":{},"busy_ns":{},"avg_service_ms":{:.4},"avg_response_ms":{:.4}"#,
                    d.served,
                    d.busy.as_nanos(),
                    d.avg_service().as_millis_f64(),
                    d.avg_response().as_millis_f64(),
                );
                // Only faulted drives report failures, so healthy-run
                // JSON keeps its pre-fault-support shape byte for byte.
                if d.failed > 0 {
                    s.push_str(&format!(r#","failed":{}"#, d.failed));
                }
                s.push('}');
                s
            })
            .collect();
        let fault = match &self.fault {
            None => String::new(),
            Some(f) => format!(r#","fault":{}"#, f.to_json()),
        };
        let hints = match &self.hints {
            None => String::new(),
            Some(h) => format!(r#","hints":{}"#, h.to_json()),
        };
        format!(
            concat!(
                r#"{{"trace":"{}","policy":"{}","disks":{},"#,
                r#""elapsed_s":{:.6},"compute_s":{:.6},"driver_s":{:.6},"stall_s":{:.6},"#,
                r#""stall_by_cause":{},"#,
                r#""fetches":{},"writes":{},"avg_fetch_ms":{:.4},"avg_disk_utilization":{:.4},"#,
                r#""per_disk":[{}]{}{}}}"#
            ),
            json_escape(&self.trace),
            json_escape(&self.policy),
            self.disks,
            self.elapsed.as_secs_f64(),
            self.compute.as_secs_f64(),
            self.driver.as_secs_f64(),
            self.stall.as_secs_f64(),
            self.stall_by_cause.to_json(),
            self.fetches,
            self.writes,
            self.avg_fetch_time.as_millis_f64(),
            self.avg_disk_utilization,
            per_disk.join(","),
            fault,
            hints,
        )
    }
}

/// Builds the drive model for position `index` in the array: the
/// configured base model, wrapped in a [`FaultyDisk`] exactly when the
/// fault plan names that drive. Un-faulted drives are built bare, so an
/// empty plan produces the same array as a build without fault support.
fn build_model(config: &SimConfig, index: usize) -> Box<dyn DiskModel> {
    let base: Box<dyn DiskModel> = match config.disk_model {
        DiskModelKind::Hp97560 => Box::new(Hp97560::new()),
        DiskModelKind::Hp97560NoReadahead => Box::new(Hp97560::without_readahead()),
        DiskModelKind::Coarse => Box::new(CoarseDisk::new()),
        DiskModelKind::Uniform(f) => Box::new(UniformDisk::new(f)),
    };
    match config.faults.for_disk(index) {
        Some(faults) => Box::new(FaultyDisk::new(
            base,
            faults,
            config.faults.rng_for_disk(index),
        )),
        None => base,
    }
}

/// Runs `trace` under `policy` and `config`; convenience wrapper that
/// builds the policy from its kind.
pub fn simulate(trace: &Trace, policy: PolicyKind, config: &SimConfig) -> Report {
    simulate_probed(trace, policy, config, &mut NoopProbe)
}

/// Runs `trace` under an already-constructed policy.
pub fn simulate_with(trace: &Trace, policy: &mut dyn Policy, config: &SimConfig) -> Report {
    simulate_with_probed(trace, policy, config, &mut NoopProbe)
}

/// [`simulate`], reporting every simulation [`Event`] to `probe`.
pub fn simulate_probed<P: Probe>(
    trace: &Trace,
    policy: PolicyKind,
    config: &SimConfig,
    probe: &mut P,
) -> Report {
    let mut p = policy.build(trace, config);
    simulate_with_probed(trace, p.as_mut(), config, probe)
}

/// [`simulate_with`], reporting every simulation [`Event`] to `probe`.
pub fn simulate_with_probed<P: Probe>(
    trace: &Trace,
    policy: &mut dyn Policy,
    config: &SimConfig,
    probe: &mut P,
) -> Report {
    Engine::new(trace, config).run(policy, probe)
}

/// Per-request driver retry progress.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Faults this request has absorbed so far (1-based attempt number).
    attempts: u32,
    /// When the request's first fault occurred (the timeout anchor).
    first_fault: Nanos,
}

/// Bookkeeping for the stall window currently open, captured at stall
/// begin and resolved into one [`StallCause`] at stall end. Tracked
/// unconditionally (not probe-gated) so probed and unprobed runs report
/// identical per-cause totals.
#[derive(Debug, Clone, Copy)]
struct StallOpen {
    /// Compact index of the awaited block.
    idx: u32,
    /// The awaited block.
    block: BlockId,
    /// When the stall began.
    from: Nanos,
    /// Driver time already accumulated at stall begin; the delta at stall
    /// end is the driver work issued inside the window, which is charged
    /// to `driver`, never to the stall.
    driver0: Nanos,
    /// A fetch of the block was already in flight at stall begin.
    began_inflight: bool,
    /// At stall begin the block itself was being read off the platter of
    /// a drive outside any declared degraded window — the defining shape
    /// of a late prefetch (vs. congestion: queued, or degraded service).
    on_platter: bool,
    /// The driver was already mid-retry on this block at stall begin.
    was_retrying: bool,
    /// A read fault was charged to this block while the window was open.
    fault_seen: bool,
}

struct Engine<'t> {
    trace: &'t Trace,
    config: &'t SimConfig,
    oracle: Oracle,
    /// Compact index of each trace reference, precomputed so the main
    /// loop's residency checks and Belady refreshes never hash.
    ref_idx: Vec<u32>,
    cache: Cache,
    missing: MissingTracker,
    array: DiskArray,
    history: FetchHistory,
    now: Nanos,
    cursor: usize,
    cpu_done: Nanos,
    driver_time: Nanos,
    fetches: u64,
    writes: u64,
    probe_buf: Vec<Event>,
    /// Pending driver retries as `(fire time, block)` in a min-heap;
    /// the tuple order makes ties deterministic.
    retry_timers: BinaryHeap<Reverse<(Nanos, BlockId)>>,
    /// Retry progress per faulted in-flight fetch. Keyed by block, which
    /// is unique: the cache holds at most one in-flight fetch per block.
    retrying: HashMap<BlockId, RetryState>,
    /// Scratch buffer for enqueues rejected inside a policy call.
    rejected_buf: Vec<BlockId>,
    /// Upcoming degraded-window boundaries `(time, disk, entering)` from
    /// the fault plan, ascending; drained into [`Event::DiskDegraded`] /
    /// [`Event::DiskRecovered`] as the clock passes them (probed runs
    /// only — the events carry no engine state).
    boundaries: VecDeque<(Nanos, DiskId, bool)>,
    faults_injected: u64,
    retries: u64,
    abandoned: u64,
    /// The stall window currently open, if any (at most one: the
    /// application blocks on one reference at a time).
    stall_open: Option<StallOpen>,
    /// Per-cause stall totals, maintained unconditionally; the run's end
    /// enforces that they sum to the accounted stall exactly.
    stall_by_cause: StallBreakdown,
    /// Declared degraded windows per disk (sorted, disjoint), precomputed
    /// so stall-begin can ask "was this drive degraded at t?" without
    /// re-deriving the plan. Empty vectors for healthy runs.
    degraded_windows: Vec<Vec<(Nanos, Nanos)>>,
    /// One bit per compact block index, set when the block is evicted
    /// after real residency (see [`Ctx::issue_fetch_idx`]).
    evicted_ever: Vec<u64>,
    /// Prediction accounting from the hint-source pre-pass; `Some`
    /// exactly when the run uses a predicted hint mode.
    hint_stats: Option<HintStats>,
}

impl<'t> Engine<'t> {
    fn new(trace: &'t Trace, config: &'t SimConfig) -> Engine<'t> {
        if !config.faults.is_empty() {
            // Guard configs built by struct literal rather than through
            // the validating builders: a bad plan or retry policy must
            // fail here, not livelock the event loop.
            config.faults.validate().expect("invalid fault plan");
            config.retry.validate();
        }
        let layout = Layout::striped(config.disks);
        // Policies only know what the hint source told them. Under the
        // oracle mode that is the application's disclosed subsequence;
        // under a predicted mode it is the epoch pre-pass of an online
        // predictor (wrong guesses included — the policy prefetches
        // them, paying the wasted bandwidth). Undisclosed blocks still
        // receive compact indices (with empty occurrence lists) so the
        // cache can track them densely when the application
        // demand-misses on them.
        let (oracle, hint_stats) = match config.hint_mode {
            crate::predict::HintMode::Oracle => {
                let oracle = match config.hints {
                    crate::hints::HintSpec::Full => Oracle::new(trace, layout),
                    ref spec => {
                        let mask = spec.mask(trace.requests.len());
                        crate::hints::hinted_oracle(trace, layout, &mask)
                    }
                };
                (oracle, None)
            }
            crate::predict::HintMode::Predicted(kind) => {
                let mut source = kind.build();
                let (oracle, stats) = crate::predict::predicted_oracle(
                    trace,
                    layout,
                    source.as_mut(),
                    crate::predict::DEFAULT_EPOCH,
                );
                (oracle, Some(stats))
            }
        };
        let ref_idx: Vec<u32> = trace
            .requests
            .iter()
            .map(|r| {
                oracle
                    .index_of(r.block)
                    .expect("every trace block is in the indexed universe")
            })
            .collect();
        let missing = MissingTracker::new(&oracle);
        let array = DiskArray::new(config.disks, config.discipline, |i| build_model(config, i));
        let degraded_windows: Vec<Vec<(Nanos, Nanos)>> = (0..config.disks)
            .map(|i| config.faults.degraded_windows(i))
            .collect();
        let mut boundaries: Vec<(Nanos, DiskId, bool)> = Vec::new();
        for (i, windows) in degraded_windows.iter().enumerate() {
            for &(from, until) in windows {
                boundaries.push((from, DiskId(i), true));
                boundaries.push((until, DiskId(i), false));
            }
        }
        boundaries.sort_by_key(|&(t, d, entering)| (t, d.index(), entering));
        let evicted_ever = vec![0u64; oracle.num_blocks().div_ceil(64)];
        let mut cache = Cache::new(config.cache_blocks, oracle.num_blocks());
        let fully_hinted = matches!(config.hint_mode, crate::predict::HintMode::Oracle)
            && config.hints.fully_disclosing(trace.requests.len());
        if !fully_hinted {
            // Value blocks with no disclosed future by LRU recency, as
            // TIP2 does for unhinted pages. Predicted hints are never
            // complete knowledge — the predictor can go silent or guess
            // wrong — so predicted runs always keep the LRU estimate.
            cache.enable_lru_estimate();
        }
        Engine {
            trace,
            config,
            oracle,
            ref_idx,
            cache,
            missing,
            array,
            history: FetchHistory::new(config.disks),
            now: Nanos::ZERO,
            cursor: 0,
            cpu_done: Nanos::ZERO,
            driver_time: Nanos::ZERO,
            fetches: 0,
            writes: 0,
            probe_buf: Vec::new(),
            retry_timers: BinaryHeap::new(),
            retrying: HashMap::new(),
            rejected_buf: Vec::new(),
            boundaries: boundaries.into(),
            faults_injected: 0,
            retries: 0,
            abandoned: 0,
            stall_open: None,
            stall_by_cause: StallBreakdown::ZERO,
            degraded_windows,
            evicted_ever,
            hint_stats,
        }
    }

    /// Whether `disk` is inside a declared degraded window at `t`. The
    /// window lists are tiny (usually empty); a linear scan is cheaper
    /// than anything clever.
    fn degraded_at(&self, disk: DiskId, t: Nanos) -> bool {
        self.degraded_windows[disk.index()]
            .iter()
            .any(|&(from, until)| from <= t && t < until)
    }

    /// Whether block `idx` has ever been evicted after real residency.
    fn was_evicted(&self, idx: u32) -> bool {
        self.evicted_ever[idx as usize / 64] & (1 << (idx % 64)) != 0
    }

    /// Opens the stall window for a reference to missing block `idx`,
    /// capturing the state that classifies the stall at close: whether a
    /// fetch was in flight and where it physically was, and whether the
    /// driver was mid-retry on it.
    fn open_stall(&mut self, idx: u32, block: BlockId) {
        let began_inflight = self.cache.inflight(idx);
        // `in_service` checks short-circuit behind the inflight test:
        // demand misses never touch the disk lookup.
        let on_platter = began_inflight
            && self.array.in_service(block)
            && !self.degraded_at(self.array.disk_of(block), self.now);
        let was_retrying = !self.retrying.is_empty() && self.retrying.contains_key(&block);
        self.stall_open = Some(StallOpen {
            idx,
            block,
            from: self.now,
            driver0: self.driver_time,
            began_inflight,
            on_platter,
            was_retrying,
            fault_seen: false,
        });
    }

    /// Closes the open stall window (if any): computes the charged time
    /// (window minus driver work issued inside it), resolves the cause,
    /// and accumulates into the per-cause totals. Returns what the
    /// [`Event::StallEnd`] needs, or `None` when no window was open.
    fn close_stall(&mut self) -> Option<(Nanos, StallCause, Nanos)> {
        let open = self.stall_open.take()?;
        let window = self.now - open.from;
        let in_driver = self.driver_time - open.driver0;
        let charged = window.checked_sub(in_driver).unwrap_or_else(|| {
            panic!(
                "stall window {window} shorter than the driver work {in_driver} issued inside it"
            )
        });
        let cause = if open.fault_seen || open.was_retrying {
            StallCause::FaultRetry
        } else if open.began_inflight {
            if open.on_platter {
                StallCause::LatePrefetch
            } else {
                StallCause::DiskCongestion
            }
        } else if self.was_evicted(open.idx) {
            StallCause::EvictionRefetch
        } else {
            StallCause::NoPrefetch
        };
        self.stall_by_cause.add(cause, charged);
        Some((window, cause, charged))
    }

    /// Emits every degraded-window boundary at or before `upto` (probed
    /// runs only; the boundaries change no engine state). Called wherever
    /// the clock is about to advance, so boundary events stay
    /// monotonically ordered within the stream.
    fn flush_boundaries<P: Probe>(&mut self, upto: Nanos, probe: &mut P) {
        if !P::ENABLED {
            return;
        }
        while let Some(&(t, disk, entering)) = self.boundaries.front() {
            if t > upto {
                break;
            }
            self.boundaries.pop_front();
            let e = if entering {
                Event::DiskDegraded { now: t, disk }
            } else {
                Event::DiskRecovered { now: t, disk }
            };
            probe.on_event(&e);
        }
    }

    /// Lets the policy act at the current instant.
    fn decide<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        if P::ENABLED {
            probe.on_event(&Event::PolicyDecision {
                now: self.now,
                cursor: self.cursor,
            });
        }
        let mut ctx = Ctx {
            now: self.now,
            cursor: self.cursor,
            oracle: &self.oracle,
            cache: &mut self.cache,
            missing: &mut self.missing,
            array: &mut self.array,
            config: self.config,
            history: &self.history,
            cpu_done: &mut self.cpu_done,
            driver_time: &mut self.driver_time,
            fetches: &mut self.fetches,
            probe_buf: &mut self.probe_buf,
            probe_on: P::ENABLED,
            demand: false,
            rejected: &mut self.rejected_buf,
            evicted_ever: &mut self.evicted_ever,
        };
        policy.decide(&mut ctx);
        self.drain_probe_buf(probe);
        self.settle_rejections(probe);
    }

    /// Asks the policy to handle a demand miss.
    fn miss<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P, block: BlockId) {
        let mut ctx = Ctx {
            now: self.now,
            cursor: self.cursor,
            oracle: &self.oracle,
            cache: &mut self.cache,
            missing: &mut self.missing,
            array: &mut self.array,
            config: self.config,
            history: &self.history,
            cpu_done: &mut self.cpu_done,
            driver_time: &mut self.driver_time,
            fetches: &mut self.fetches,
            probe_buf: &mut self.probe_buf,
            probe_on: P::ENABLED,
            demand: true,
            rejected: &mut self.rejected_buf,
            evicted_ever: &mut self.evicted_ever,
        };
        policy.on_miss(&mut ctx, block);
        self.drain_probe_buf(probe);
        self.settle_rejections(probe);
    }

    /// Forwards events buffered during a policy call to the probe.
    fn drain_probe_buf<P: Probe>(&mut self, probe: &mut P) {
        if P::ENABLED {
            for e in self.probe_buf.drain(..) {
                probe.on_event(&e);
            }
        }
    }

    /// Converts enqueues an out-of-service drive rejected during the last
    /// policy call into driver faults (retry or abandonment).
    fn settle_rejections<P: Probe>(&mut self, probe: &mut P) {
        if self.rejected_buf.is_empty() {
            return;
        }
        let mut rejected = std::mem::take(&mut self.rejected_buf);
        for block in rejected.drain(..) {
            let disk = self.array.disk_of(block);
            self.read_fault(block, disk, FaultCause::Rejected, probe);
        }
        // Hand the (now empty) allocation back for the next burst.
        self.rejected_buf = rejected;
    }

    /// Charges one fault against the in-flight fetch of `block` and
    /// answers it: schedule a backed-off retry while the budget lasts,
    /// abandon the request otherwise. Abandonment releases the cache
    /// frame and restores the block to the missing index, so policies can
    /// re-plan it (and a blocked demand miss re-issues immediately).
    fn read_fault<P: Probe>(
        &mut self,
        block: BlockId,
        disk: DiskId,
        cause: FaultCause,
        probe: &mut P,
    ) {
        let now = self.now;
        if let Some(open) = &mut self.stall_open {
            if open.block == block {
                // The application is waiting on this very block: whatever
                // the stall looked like at begin, retry/backoff is now
                // holding it open.
                open.fault_seen = true;
            }
        }
        let state = self.retrying.entry(block).or_insert(RetryState {
            attempts: 0,
            first_fault: now,
        });
        state.attempts += 1;
        let attempt = state.attempts;
        let first_fault = state.first_fault;
        self.faults_injected += 1;
        if P::ENABLED {
            probe.on_event(&Event::FaultInjected {
                now,
                block,
                disk,
                write: false,
                cause,
                attempt,
            });
        }
        let policy = &self.config.retry;
        let timed_out = policy
            .timeout
            .is_some_and(|limit| now - first_fault > limit);
        if attempt <= policy.max_retries && !timed_out {
            let fire = now + policy.backoff_for(attempt);
            self.retry_timers.push(Reverse((fire, block)));
        } else {
            self.abandoned += 1;
            if P::ENABLED {
                probe.on_event(&Event::RequestAbandoned {
                    now,
                    block,
                    disk,
                    write: false,
                    attempts: attempt,
                });
            }
            self.retrying.remove(&block);
            let idx = self
                .oracle
                .index_of(block)
                .expect("abandoned block outside the indexed universe");
            self.cache.cancel_fetch(idx);
            self.missing.on_evicted_idx(idx, self.cursor, &self.oracle);
        }
    }

    /// Records a fault on a write-behind flush. Writes are best-effort
    /// and never retried: the block is still clean in the cache, so the
    /// flush is simply abandoned.
    fn write_fault<P: Probe>(
        &mut self,
        block: BlockId,
        disk: DiskId,
        cause: FaultCause,
        probe: &mut P,
    ) {
        self.faults_injected += 1;
        self.abandoned += 1;
        if P::ENABLED {
            probe.on_event(&Event::FaultInjected {
                now: self.now,
                block,
                disk,
                write: true,
                cause,
                attempt: 1,
            });
            probe.on_event(&Event::RequestAbandoned {
                now: self.now,
                block,
                disk,
                write: true,
                attempts: 1,
            });
        }
    }

    /// The time of the earliest pending event from either source: a disk
    /// completion or a driver retry timer.
    fn next_pending(&self) -> Option<Nanos> {
        let completion = self.array.next_event().map(|(t, _)| t);
        let retry = self.retry_timers.peek().map(|r| r.0 .0);
        match (completion, retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Processes the earliest pending event — a disk completion or a
    /// retry timer, completions first on ties — advancing `now` to it.
    fn pop_event<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        let completion = self.array.next_event();
        let retry = self.retry_timers.peek().map(|r| r.0);
        match (completion, retry) {
            (None, None) => {
                panic!("waiting with no pending I/O and no retry timer — policy deadlock")
            }
            (Some((tc, d)), r) if r.is_none_or(|(tr, _)| tc <= tr) => {
                self.pop_completion(tc, d, policy, probe);
            }
            // Either no completion is pending or the retry fires first.
            _ => {
                let Reverse((t, block)) = self.retry_timers.pop().expect("peeked a timer");
                self.fire_retry(t, block, probe);
            }
        }
    }

    /// Processes the disk completion on `d` at time `t`.
    fn pop_completion<P: Probe>(
        &mut self,
        t: Nanos,
        d: DiskId,
        policy: &mut dyn Policy,
        probe: &mut P,
    ) {
        debug_assert!(t >= self.now);
        self.flush_boundaries(t, probe);
        self.now = t;
        let done = if P::ENABLED {
            let buf = &mut self.probe_buf;
            let done = self
                .array
                .complete_observed(t, d, |disk, e| buf.push(Event::from_disk(t, disk, e)));
            self.drain_probe_buf(probe);
            done
        } else {
            self.array.complete(t, d)
        };
        match done.kind {
            parcache_disk::disk::ReqKind::Read => {
                if done.outcome.is_ok() {
                    self.retrying.remove(&done.block);
                    self.history.push_fetch(d.index(), done.service);
                    let idx = self
                        .oracle
                        .index_of(done.block)
                        .expect("completed block outside the indexed universe");
                    self.cache.complete_fetch(idx, self.cursor, &self.oracle);
                } else {
                    // A media error: the platter time was spent but no
                    // data arrived. The frame stays reserved pending the
                    // retry decision, and the estimator only learns from
                    // successful fetches.
                    self.read_fault(done.block, d, FaultCause::MediaError, probe);
                }
            }
            // A finished write frees disk bandwidth but changes nothing
            // in the cache: the block stayed available throughout.
            parcache_disk::disk::ReqKind::Write => {
                if !done.outcome.is_ok() {
                    self.write_fault(done.block, d, FaultCause::MediaError, probe);
                }
            }
        }
        self.decide(policy, probe);
    }

    /// Re-issues the faulted fetch of `block` whose backoff expired at
    /// `t`. The retry charges driver overhead like any issue; a drive
    /// still mid-outage rejects it, which counts as a further fault.
    fn fire_retry<P: Probe>(&mut self, t: Nanos, block: BlockId, probe: &mut P) {
        debug_assert!(t >= self.now);
        self.flush_boundaries(t, probe);
        self.now = t;
        let attempt = self
            .retrying
            .get(&block)
            .expect("retry timer for an untracked request")
            .attempts;
        let disk = self.array.disk_of(block);
        self.driver_time += self.config.driver_overhead;
        self.cpu_done = self.cpu_done.max(self.now) + self.config.driver_overhead;
        self.retries += 1;
        let outcome = if P::ENABLED {
            probe.on_event(&Event::RetryIssued {
                now: self.now,
                block,
                disk,
                attempt,
            });
            let now = self.now;
            let buf = &mut self.probe_buf;
            let outcome = self
                .array
                .enqueue_observed(now, block, |d, e| buf.push(Event::from_disk(now, d, e)));
            self.drain_probe_buf(probe);
            outcome
        } else {
            self.array.enqueue(self.now, block)
        };
        if outcome.is_rejected() {
            self.read_fault(block, disk, FaultCause::Rejected, probe);
        }
    }

    /// Advances to `cpu_done`, processing any completions (and retry
    /// timers) on the way. Completions may add driver work, pushing
    /// `cpu_done` out further.
    fn advance_cpu<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) {
        while let Some(t) = self.next_pending() {
            if t > self.cpu_done {
                break;
            }
            self.pop_event(policy, probe);
        }
        self.flush_boundaries(self.cpu_done, probe);
        self.now = self.cpu_done;
    }

    fn run<P: Probe>(&mut self, policy: &mut dyn Policy, probe: &mut P) -> Report {
        // Degraded windows opening at time zero are announced before
        // anything else happens.
        self.flush_boundaries(Nanos::ZERO, probe);
        // Initial decision point: prefetching can begin at time zero.
        self.decide(policy, probe);

        for i in 0..self.trace.requests.len() {
            let req = self.trace.requests[i];
            let req_idx = self.ref_idx[i];
            // The block about to be referenced may not be evicted (see
            // Cache::pin); critical under incomplete hints.
            self.cache.pin(Some(req_idx));
            // The application computes before the reference.
            self.history.push_compute(req.compute);
            self.cpu_done = self.cpu_done.max(self.now) + req.compute;
            self.advance_cpu(policy, probe);

            // A stall starts if the block has not arrived by the time the
            // application references it. The pin above guarantees a
            // resident block stays resident, so this is decided once.
            // Provenance bookkeeping is unconditional — the per-cause
            // breakdown is part of the report, probe or no probe.
            let resident = self.cache.resident(req_idx);
            if P::ENABLED {
                let e = if resident {
                    Event::CacheHit {
                        now: self.now,
                        block: req.block,
                    }
                } else {
                    Event::CacheMiss {
                        now: self.now,
                        block: req.block,
                    }
                };
                probe.on_event(&e);
                if !resident {
                    probe.on_event(&Event::StallBegin {
                        now: self.now,
                        block: req.block,
                    });
                }
            }
            if !resident {
                self.open_stall(req_idx, req.block);
            }

            // The reference: stall until the block is available and the
            // CPU backlog (driver work issued meanwhile) has drained.
            loop {
                if self.cache.resident(req_idx) {
                    if self.now < self.cpu_done {
                        self.advance_cpu(policy, probe);
                        continue;
                    }
                    break;
                }
                if !self.cache.inflight(req_idx) {
                    self.miss(policy, probe, req.block);
                }
                self.pop_event(policy, probe);
            }

            if let Some((stalled, cause, charged)) = self.close_stall() {
                if P::ENABLED {
                    probe.on_event(&Event::StallEnd {
                        now: self.now,
                        block: req.block,
                        stalled,
                        cause,
                        charged,
                    });
                }
            }

            // Consume. The reference is satisfied, so the pin lifts: the
            // just-used block is an ordinary eviction candidate again.
            self.cache.pin(None);
            self.cache.on_reference(req_idx, i, &self.oracle);
            self.cursor = i + 1;
            // Write-behind extension: periodically flush the block the
            // application just updated. The app does not wait for it, but
            // it consumes disk bandwidth and driver CPU.
            if let Some(period) = self.config.write_behind_period {
                if (i + 1) % period == 0 {
                    self.writes += 1;
                    self.driver_time += self.config.driver_overhead;
                    self.cpu_done = self.cpu_done.max(self.now) + self.config.driver_overhead;
                    let outcome = if P::ENABLED {
                        let now = self.now;
                        probe.on_event(&Event::WriteIssued {
                            now,
                            block: req.block,
                            disk: self.array.disk_of(req.block),
                        });
                        let buf = &mut self.probe_buf;
                        let outcome = self.array.enqueue_write_observed(now, req.block, |d, e| {
                            buf.push(Event::from_disk(now, d, e))
                        });
                        self.drain_probe_buf(probe);
                        outcome
                    } else {
                        self.array.enqueue_write(self.now, req.block)
                    };
                    if outcome.is_rejected() {
                        // Best-effort write to an out-of-service drive:
                        // dropped, never retried.
                        let disk = self.array.disk_of(req.block);
                        self.write_fault(req.block, disk, FaultCause::Rejected, probe);
                    }
                }
            }
            self.decide(policy, probe);
        }

        // Driver overhead charged at or after the final reference
        // (write-behind flushes on the last consume, fetches issued by
        // the final decide()) sits in the CPU backlog: it is already in
        // `driver_time` but the clock has not advanced over it. Drain it
        // so `elapsed` covers every charged nanosecond.
        if self.cpu_done > self.now {
            self.advance_cpu(policy, probe);
        }
        // Every fetched block is referenced at or after its issue, and
        // the blocking loop retries until the block arrives — so no read
        // can still be mid-retry once the last reference is consumed.
        debug_assert!(self.retry_timers.is_empty(), "retry timer outlived the run");

        let elapsed = self.now;
        let compute: Nanos = self.trace.requests.iter().map(|r| r.compute).sum();
        // Checked, not saturating: a component exceeding the total is an
        // accounting bug and must fail loudly, not clamp stall to zero.
        let stall = elapsed
            .checked_sub(compute)
            .and_then(|rest| rest.checked_sub(self.driver_time))
            .unwrap_or_else(|| {
                panic!(
                    "accounting identity violated: elapsed {} < compute {} + driver {}",
                    elapsed, compute, self.driver_time
                )
            });
        // Provenance conservation: every charged stall nanosecond was
        // attributed to exactly one cause. This holds by construction
        // (non-stall segments advance the clock by exactly their compute
        // and driver charges), so any imbalance is an engine bug.
        let attributed = self.stall_by_cause.total();
        assert!(
            attributed == stall,
            "stall attribution leaked: per-cause total {attributed} != accounted stall {stall}"
        );
        let fault = if self.config.faults.is_empty() {
            None
        } else {
            let per_disk_degraded: Vec<Nanos> = (0..self.config.disks)
                .map(|i| self.config.faults.degraded_nanos(i, elapsed))
                .collect();
            let total: Nanos = per_disk_degraded.iter().copied().sum();
            let availability = if elapsed == Nanos::ZERO {
                1.0
            } else {
                1.0 - total.as_nanos() as f64
                    / (elapsed.as_nanos() as f64 * self.config.disks as f64)
            };
            Some(FaultSummary {
                faults_injected: self.faults_injected,
                retries: self.retries,
                abandoned: self.abandoned,
                per_disk_degraded,
                availability,
            })
        };
        Report {
            trace: self.trace.name.clone(),
            policy: policy.name().to_string(),
            disks: self.config.disks,
            elapsed,
            compute,
            driver: self.driver_time,
            stall,
            stall_by_cause: self.stall_by_cause,
            fetches: self.fetches,
            writes: self.writes,
            avg_fetch_time: self.array.avg_fetch_time(),
            avg_disk_utilization: self.array.avg_utilization(elapsed),
            // stats_at, not stats: a request still on the platter when the
            // run ends contributes its partial service time to `busy`.
            per_disk: self.array.stats_at(elapsed),
            fault,
            hints: self.hint_stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_trace::Request;

    fn unit_trace(blocks: &[u64], compute_ms: u64) -> Trace {
        Trace::new(
            "unit",
            blocks
                .iter()
                .map(|&b| Request {
                    block: BlockId(b),
                    compute: Nanos::from_millis(compute_ms),
                })
                .collect(),
            4,
        )
    }

    fn theory_config(disks: usize, cache: usize, fetch_ms: u64) -> SimConfig {
        let mut c = SimConfig::new(disks, cache);
        c.disk_model = DiskModelKind::Uniform(Nanos::from_millis(fetch_ms));
        c.driver_overhead = Nanos::ZERO;
        c
    }

    #[test]
    fn demand_fetch_timing_matches_theory() {
        // One block, compute 1ms, fetch 5ms: elapsed = 1 (compute) + 5
        // (demand stall) = 6ms.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.elapsed, Nanos::from_millis(6));
        assert_eq!(r.compute, Nanos::from_millis(1));
        assert_eq!(r.stall, Nanos::from_millis(5));
        assert_eq!(r.fetches, 1);
    }

    #[test]
    fn cache_hit_costs_nothing_extra() {
        let t = unit_trace(&[0, 0, 0], 2);
        let cfg = theory_config(1, 4, 5);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        // One fetch (5ms stall) + 3 x 2ms compute.
        assert_eq!(r.elapsed, Nanos::from_millis(11));
        assert_eq!(r.fetches, 1);
    }

    #[test]
    fn breakdown_always_sums_to_elapsed() {
        let t = unit_trace(&[0, 1, 2, 3, 0, 1, 2, 3], 1);
        for kind in PolicyKind::ALL {
            let mut cfg = theory_config(2, 3, 4);
            cfg.driver_overhead = Nanos::from_micros(500);
            let r = simulate(&t, kind, &cfg);
            assert_eq!(
                r.elapsed,
                r.compute + r.driver + r.stall,
                "{kind} breakdown broken"
            );
            assert_eq!(r.compute, Nanos::from_millis(8), "{kind}");
        }
    }

    #[test]
    fn driver_overhead_is_charged_per_fetch() {
        let t = unit_trace(&[0, 1], 1);
        let mut cfg = theory_config(1, 4, 5);
        cfg.driver_overhead = Nanos::from_millis(1);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.fetches, 2);
        assert_eq!(r.driver, Nanos::from_millis(2));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn prefetching_beats_demand_on_sequential_io_bound_work() {
        // 32 distinct blocks on 2 disks, tiny compute: demand stalls on
        // every block; any prefetcher overlaps fetches with stalls.
        let blocks: Vec<u64> = (0..32).collect();
        let t = unit_trace(&blocks, 1);
        let cfg = theory_config(2, 8, 10);
        let demand = simulate(&t, PolicyKind::Demand, &cfg);
        for kind in PolicyKind::PREFETCHING {
            let r = simulate(&t, kind, &cfg);
            assert!(
                r.elapsed < demand.elapsed,
                "{kind}: {} !< {}",
                r.elapsed,
                demand.elapsed
            );
        }
    }

    #[test]
    fn all_policies_serve_every_reference() {
        let blocks: Vec<u64> = (0..40).map(|i| i % 10).collect();
        let t = unit_trace(&blocks, 1);
        for kind in PolicyKind::ALL {
            let cfg = theory_config(3, 4, 7);
            let r = simulate(&t, kind, &cfg);
            assert!(r.elapsed >= r.compute, "{kind}");
            assert!(r.fetches >= 10, "{kind} fetched {} < distinct", r.fetches);
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let t = unit_trace(&[0, 1], 4);
        let r = simulate(&t, PolicyKind::Demand, &theory_config(1, 4, 2));
        let header_cols = Report::csv_header().split(',').count();
        let row = r.to_csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        assert!(row.starts_with("unit,demand,1,"));
    }

    #[test]
    fn fetch_history_window_and_ratio() {
        let mut h = FetchHistory::new(2);
        assert_eq!(h.avg_fetch(0), None);
        assert_eq!(h.avg_compute(), None);
        assert_eq!(h.fetch_compute_ratio(0), None);
        for _ in 0..150 {
            h.push_fetch(0, Nanos::from_millis(10));
            h.push_compute(Nanos::from_millis(2));
        }
        // Window capped at 100; averages are exact.
        assert_eq!(h.avg_fetch(0), Some(Nanos::from_millis(10)));
        assert_eq!(h.avg_compute(), Some(Nanos::from_millis(2)));
        let f = h.fetch_compute_ratio(0).unwrap();
        assert!((f - 5.0).abs() < 1e-9, "{f}");
        // Disk 1 has no history.
        assert_eq!(h.avg_fetch(1), None);
        assert_eq!(h.fetch_compute_ratio(1), None);
    }

    #[test]
    fn fetch_history_rolling_sums_match_naive_recomputation() {
        // Property test: after every push in a randomized observation
        // stream, the O(1) incrementally-maintained averages and ratio
        // must equal recomputing them from the raw windows.
        let mut rng = parcache_types::rng::Rng::seed_from_u64(0x0f5e_2026);
        let disks = 3;
        let mut h = FetchHistory::new(disks);
        let mut naive_fetch: Vec<Vec<u64>> = vec![Vec::new(); disks];
        let mut naive_compute: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            if rng.gen_bool(0.5) {
                let d = rng.gen_range(0usize..disks);
                let t = rng.gen_range(0u64..50_000_000);
                h.push_fetch(d, Nanos(t));
                naive_fetch[d].push(t);
            } else {
                let t = rng.gen_range(0u64..5_000_000);
                h.push_compute(Nanos(t));
                naive_compute.push(t);
            }
            let window =
                |xs: &[u64]| -> Vec<u64> { xs[xs.len().saturating_sub(HISTORY)..].to_vec() };
            let avg = |xs: &[u64]| -> Option<Nanos> {
                if xs.is_empty() {
                    return None;
                }
                Some(Nanos(xs.iter().sum::<u64>()).div_rounded(xs.len() as u64))
            };
            let cw = window(&naive_compute);
            assert_eq!(h.avg_compute(), avg(&cw));
            for (d, fetches) in naive_fetch.iter().enumerate() {
                let fw = window(fetches);
                assert_eq!(h.avg_fetch(d), avg(&fw), "disk {d}");
                let expect_ratio = if fw.is_empty() || cw.iter().sum::<u64>() == 0 {
                    None
                } else {
                    let f = fw.iter().sum::<u64>() as f64 / fw.len() as f64;
                    let c = cw.iter().sum::<u64>() as f64 / cw.len() as f64;
                    Some(f / c)
                };
                assert_eq!(h.fetch_compute_ratio(d), expect_ratio, "disk {d}");
            }
        }
    }

    #[test]
    fn unhinted_references_become_demand_misses() {
        use crate::hints::HintSpec;
        let t = unit_trace(&[0, 1, 2, 3], 8);
        let mut cfg = theory_config(1, 8, 4);
        cfg.hints = HintSpec::None;
        for kind in PolicyKind::ALL {
            let r = simulate(&t, kind, &cfg);
            // Nothing disclosed: no prefetching possible, every block
            // demand-missed with a full F=4 stall.
            assert_eq!(r.fetches, 4, "{kind}");
            assert_eq!(r.stall, Nanos::from_millis(16), "{kind}");
        }
    }

    #[test]
    fn hint_stream_ending_mid_run_is_not_full_disclosure() {
        // A hint stream that stops mid-run (an application that quits
        // hinting, a predictor gone silent) must leave the engine
        // believing *nothing* about the tail — not that the tail holds
        // no future references. Regression for the disclosure
        // bookkeeping: the complete-knowledge gate now asks
        // `fully_disclosing(n)`, which a mid-run prefix never satisfies.
        use crate::hints::HintSpec;
        // Four distinct blocks through a three-frame cache, with block 0
        // referenced once early and again only after the cutoff. Full
        // disclosure sees that far reuse; a stream ending at 9 must fall
        // back to the recency estimate for it, so replacement genuinely
        // depends on how much of the future is known and a cutoff
        // changes the outcome — for every policy, demand included.
        let blocks = [0, 1, 2, 3, 2, 1, 2, 2, 1, 3, 0];
        let t = unit_trace(&blocks, 8);
        for kind in PolicyKind::ALL {
            let cfg = |spec: HintSpec| {
                let mut c = theory_config(2, 3, 4);
                c.hints = spec;
                c
            };
            let full = simulate(&t, kind, &cfg(HintSpec::Full));
            let none = simulate(&t, kind, &cfg(HintSpec::None));
            // The degenerate prefixes are exactly the closed-form specs.
            assert_eq!(
                simulate(&t, kind, &cfg(HintSpec::Prefix { disclosed: 0 })),
                none,
                "{kind}: an immediately-exhausted stream is no hints at all"
            );
            assert_eq!(
                simulate(
                    &t,
                    kind,
                    &cfg(HintSpec::Prefix {
                        disclosed: blocks.len()
                    })
                ),
                full,
                "{kind}: a stream covering the whole trace is full disclosure"
            );
            // A mid-run cutoff is strictly partial knowledge: the policy
            // cannot do better than full disclosure, and the audited run
            // must satisfy every conservation invariant.
            let (half, outcome) =
                crate::audit::simulate_audited(&t, kind, &cfg(HintSpec::Prefix { disclosed: 9 }));
            outcome.assert_clean();
            assert_ne!(half, full, "{kind}: exhausted stream treated as omniscient");
            assert!(
                half.elapsed >= full.elapsed,
                "{kind}: partial hints beat full disclosure"
            );
            assert_eq!(half.elapsed, half.compute + half.driver + half.stall);
        }
    }

    #[test]
    fn predicted_hint_modes_run_every_policy_audit_clean() {
        // Smoke the predictor path end to end at engine level: each
        // online source drives each policy through the audited engine,
        // stats are attached, and the accounting identity holds. A
        // looping trace gives the predictors something learnable.
        use crate::predict::{HintMode, PredictorKind};
        let blocks: Vec<u64> = (0..4).flat_map(|_| 0..12u64).collect();
        let t = unit_trace(&blocks, 2);
        for kind in PolicyKind::ALL {
            for pk in PredictorKind::ALL {
                let mut cfg = theory_config(2, 6, 4);
                cfg.hint_mode = HintMode::Predicted(pk);
                let (r, outcome) = crate::audit::simulate_audited(&t, kind, &cfg);
                outcome.assert_clean();
                let stats = r.hints.as_ref().unwrap_or_else(|| {
                    panic!("{kind}/{}: predicted run must carry HintStats", pk.name())
                });
                assert_eq!(stats.source, pk.name());
                assert_eq!(stats.references, blocks.len() as u64);
                assert!(stats.correct <= stats.predicted);
                assert_eq!(r.elapsed, r.compute + r.driver + r.stall, "{kind}");
            }
            // Oracle mode stays stats-free so its reports render
            // byte-identically to pre-hint-source builds.
            let cfg = theory_config(2, 6, 4);
            assert!(simulate(&t, kind, &cfg).hints.is_none());
        }
    }

    #[test]
    fn trailing_write_behind_driver_work_lands_in_elapsed() {
        // The final reference triggers a write-behind flush whose driver
        // overhead is charged to the CPU timeline after the last consume.
        // Before the end-of-run drain, that overhead sat in `driver` but
        // not in `elapsed`, breaking elapsed = compute + driver + stall
        // (the saturating subtraction clamped stall instead of failing).
        let t = unit_trace(&[0, 1], 5);
        let mut cfg = theory_config(2, 4, 3);
        cfg.driver_overhead = Nanos::from_millis(1);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Aggressive, &cfg);
        // Both blocks prefetched at t=0 (2ms driver), hidden under the
        // 10ms of compute; the flush after the last reference adds 1ms of
        // driver work that the clock must drain: elapsed = 10 + 3 + 0.
        assert_eq!(r.writes, 1);
        assert_eq!(r.driver, Nanos::from_millis(3));
        assert_eq!(r.compute, Nanos::from_millis(10));
        assert_eq!(r.stall, Nanos::ZERO);
        assert_eq!(r.elapsed, Nanos::from_millis(13));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn trailing_drain_holds_for_demand_with_mid_run_stall() {
        // Same shape but with a real stall in the middle, checking the
        // drain composes with nonzero stall: the cold miss at t=4 waits
        // 1ms of driver + 2ms of stall; the final flush adds 1ms more
        // driver that elapsed must cover.
        let t = unit_trace(&[0, 0], 4);
        let mut cfg = theory_config(1, 4, 3);
        cfg.driver_overhead = Nanos::from_millis(1);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.writes, 1);
        assert_eq!(r.compute, Nanos::from_millis(8));
        assert_eq!(r.driver, Nanos::from_millis(2));
        assert_eq!(r.stall, Nanos::from_millis(2));
        assert_eq!(r.elapsed, Nanos::from_millis(12));
        assert_eq!(r.elapsed, r.compute + r.driver + r.stall);
    }

    #[test]
    fn fetch_history_averages_round_to_nearest() {
        // 1ns and 2ns observations average to 1.5ns: div_rounded keeps
        // the nearest nanosecond (2) where truncating `/` dropped to 1.
        let mut h = FetchHistory::new(1);
        h.push_fetch(0, Nanos(1));
        h.push_fetch(0, Nanos(2));
        assert_eq!(h.avg_fetch(0), Some(Nanos(2)));
        h.push_compute(Nanos(1));
        h.push_compute(Nanos(2));
        assert_eq!(h.avg_compute(), Some(Nanos(2)));
    }

    #[test]
    fn write_behind_consumes_bandwidth_without_stalling_directly() {
        let t = unit_trace(&[0, 0, 0, 0, 0, 0, 0, 0], 4);
        let mut cfg = theory_config(1, 4, 3);
        cfg.write_behind_period = Some(2);
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.writes, 4);
        assert_eq!(r.fetches, 1);
        // All-hit trace: the single cold miss stalls (3ms); the four
        // writes proceed in the background and add no stall.
        assert_eq!(r.stall, Nanos::from_millis(3));
    }

    // ------------------------------------------------------------------
    // Fault injection: hand-computable retry, abandonment, and degraded
    // accounting scenarios.

    use crate::config::RetryPolicy;
    use parcache_disk::FaultPlan;

    fn faults(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).expect("test fault spec parses")
    }

    #[test]
    fn outage_retries_with_exponential_backoff_until_recovery() {
        // Disk 0 is out of service for [0, 10ms). The demand miss at
        // t=1ms is rejected; retries back off 1, 2, 4, 8ms (rejected at
        // 2, 4, 8; accepted at 16). Service is 5ms: elapsed = 21ms.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5).with_faults(faults("outage:0:0:10"));
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.elapsed, Nanos::from_millis(21));
        assert_eq!(r.compute, Nanos::from_millis(1));
        assert_eq!(r.stall, Nanos::from_millis(20));
        assert_eq!(r.fetches, 1);
        let f = r.fault.as_ref().expect("non-empty plan yields a summary");
        assert_eq!(f.faults_injected, 4);
        assert_eq!(f.retries, 4);
        assert_eq!(f.abandoned, 0);
        assert_eq!(f.per_disk_degraded, vec![Nanos::from_millis(10)]);
        let expect = 1.0 - 10.0 / 21.0;
        assert!((f.availability - expect).abs() < 1e-9, "{}", f.availability);
    }

    #[test]
    fn exhausted_retry_budget_abandons_and_reissues_demand_fetches() {
        // A 100ms outage with a one-retry budget: each second-fault
        // abandonment re-issues the demand fetch (the application cannot
        // proceed without the block), so issues march at 1ms intervals
        // until the retry at t=100ms lands. 99 fetches are issued, 98
        // abandoned, and every fault is answered by exactly one retry or
        // one abandonment.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5)
            .with_faults(faults("outage:0:0:100"))
            .with_retry(RetryPolicy {
                max_retries: 1,
                backoff: Nanos::from_millis(1),
                backoff_cap: Nanos::from_millis(1),
                timeout: None,
            });
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.elapsed, Nanos::from_millis(105));
        assert_eq!(r.fetches, 99);
        let f = r.fault.as_ref().unwrap();
        assert_eq!(f.retries, 99);
        assert_eq!(f.abandoned, 98);
        assert_eq!(f.faults_injected, f.retries + f.abandoned);
    }

    #[test]
    fn fail_slow_window_stretches_service_without_faulting() {
        // Factor 2 on a 5ms uniform disk: the demand fetch takes 10ms,
        // elapsed = 1 + 10 = 11ms. No faults are injected; the whole run
        // sits inside the declared window, so availability is zero.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5).with_faults(faults("slow:0:0:100:2"));
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        assert_eq!(r.elapsed, Nanos::from_millis(11));
        assert_eq!(r.stall, Nanos::from_millis(10));
        let f = r.fault.as_ref().unwrap();
        assert_eq!(f.faults_injected, 0);
        assert_eq!(f.retries, 0);
        assert_eq!(f.abandoned, 0);
        assert_eq!(f.per_disk_degraded, vec![Nanos::from_millis(11)]);
        assert_eq!(f.availability, 0.0);
    }

    #[test]
    fn empty_plan_reports_no_fault_summary() {
        let t = unit_trace(&[0, 1, 2, 3], 1);
        let cfg = theory_config(2, 4, 5);
        let r = simulate(&t, PolicyKind::Aggressive, &cfg);
        assert!(r.fault.is_none());
        let json = r.to_json();
        assert!(!json.contains("fault"), "{json}");
        assert!(!json.contains("failed"), "{json}");
        assert!(!json.contains("degraded"), "{json}");
    }

    #[test]
    fn faulted_runs_are_identical_probed_and_unprobed() {
        // The probe layer must observe, never perturb — including the
        // retry machine and degraded-boundary flushing.
        let blocks: Vec<u64> = (0..24).map(|i| i % 12).collect();
        let t = unit_trace(&blocks, 1);
        let cfg = theory_config(2, 6, 5)
            .with_faults(faults("flaky:*:0.2,slow:0:5:40:3,outage:1:10:30,seed:7"));
        for kind in PolicyKind::ALL {
            let plain = simulate(&t, kind, &cfg);
            let mut metrics = crate::metrics::MetricsProbe::new(cfg.disks, Nanos::from_millis(1));
            let probed = simulate_probed(&t, kind, &cfg, &mut metrics);
            assert_eq!(plain, probed, "{kind}: probing changed a faulted run");
        }
    }

    #[test]
    fn timeout_caps_the_retry_window() {
        // With a 3ms timeout measured from the first fault, the fetch
        // first faulted at t=1ms abandons once a fault lands past t=4ms:
        // retries at 2 and 4 are within budget, the fault at 4 schedules
        // a retry at 8 only if 4 - 1 <= 3 — it is, so the abandon comes
        // from the fault at t=8 (7ms after the first). The re-issued
        // fetch at t=8 then walks the same ladder shifted.
        let t = unit_trace(&[0], 1);
        let cfg = theory_config(1, 4, 5)
            .with_faults(faults("outage:0:0:10"))
            .with_retry(RetryPolicy {
                max_retries: 8,
                backoff: Nanos::from_millis(1),
                backoff_cap: Nanos::from_millis(64),
                timeout: Some(Nanos::from_millis(3)),
            });
        let r = simulate(&t, PolicyKind::Demand, &cfg);
        let f = r.fault.as_ref().unwrap();
        assert!(f.abandoned > 0, "timeout never abandoned: {f:?}");
        assert_eq!(f.faults_injected, f.retries + f.abandoned);
        // The run still terminates with the block served after recovery.
        assert_eq!(r.fetches, f.abandoned + 1);
        assert!(r.elapsed > Nanos::from_millis(10));
    }
}
