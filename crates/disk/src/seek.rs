//! Seek-time curves.
//!
//! The HP 97560 seek curve follows Ruemmler & Wilkes, *An Introduction to
//! Disk Drive Modelling* (IEEE Computer, 1994): a square-root region for
//! short seeks dominated by acceleration, and a linear region for long
//! seeks dominated by coast time. The paper validates this implicitly: it
//! states the maximum seek within a 100-cylinder group is 7.24 ms, which is
//! exactly `3.24 + 0.400 * sqrt(100)`.

use parcache_types::Nanos;

/// A piecewise seek-time curve: `a + b*sqrt(d)` below the breakpoint,
/// `c + e*d` at or above it, and zero for `d == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekCurve {
    /// Constant term of the square-root region, in milliseconds.
    pub sqrt_base_ms: f64,
    /// Coefficient of `sqrt(distance)` in the square-root region.
    pub sqrt_coeff_ms: f64,
    /// Constant term of the linear region, in milliseconds.
    pub lin_base_ms: f64,
    /// Coefficient of `distance` in the linear region.
    pub lin_coeff_ms: f64,
    /// Seek distance (in cylinders) at which the linear region begins.
    pub breakpoint: u64,
}

impl SeekCurve {
    /// The HP 97560 curve (Ruemmler & Wilkes 1994).
    pub const HP97560: SeekCurve = SeekCurve {
        sqrt_base_ms: 3.24,
        sqrt_coeff_ms: 0.400,
        lin_base_ms: 8.00,
        lin_coeff_ms: 0.008,
        breakpoint: 383,
    };

    /// Seek time for a head movement of `distance` cylinders.
    pub fn seek_time(&self, distance: u64) -> Nanos {
        if distance == 0 {
            return Nanos::ZERO;
        }
        let ms = if distance < self.breakpoint {
            self.sqrt_base_ms + self.sqrt_coeff_ms * (distance as f64).sqrt()
        } else {
            self.lin_base_ms + self.lin_coeff_ms * distance as f64
        };
        Nanos::from_millis_f64(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(SeekCurve::HP97560.seek_time(0), Nanos::ZERO);
    }

    #[test]
    fn hundred_cylinder_seek_matches_paper() {
        // The paper: "The maximum seek time within a group of 100 cylinders
        // is 7.24ms."
        let t = SeekCurve::HP97560.seek_time(100);
        assert!((t.as_millis_f64() - 7.24).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn single_cylinder_seek() {
        let t = SeekCurve::HP97560.seek_time(1);
        assert!((t.as_millis_f64() - 3.64).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn long_seeks_use_linear_region() {
        let t = SeekCurve::HP97560.seek_time(1000);
        assert!((t.as_millis_f64() - 16.0).abs() < 1e-9, "got {t}");
        // Full-stroke seek on 1962 cylinders.
        let full = SeekCurve::HP97560.seek_time(1961);
        assert!((full.as_millis_f64() - 23.688).abs() < 1e-9, "got {full}");
    }

    #[test]
    fn curve_is_monotone() {
        let c = SeekCurve::HP97560;
        let mut prev = Nanos::ZERO;
        for d in 0..1962 {
            let t = c.seek_time(d);
            assert!(t >= prev, "seek curve decreased at distance {d}");
            prev = t;
        }
    }
}
