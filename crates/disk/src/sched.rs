//! Disk-head scheduling disciplines.
//!
//! The paper's results use CSCAN (chosen over SCAN because the HP 97560's
//! readahead buffer favors always scanning in the read direction) and
//! compare against FCFS in §4.4 / Table 5. SCAN and SSTF are provided as
//! natural extensions.

use crate::disk::Pending;

/// A head-scheduling discipline: picks which queued request to serve next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-come first-served: strict arrival order.
    Fcfs,
    /// Circular SCAN: serve requests in increasing cylinder order from the
    /// current head position, wrapping around to the lowest cylinder.
    Cscan,
    /// Elevator SCAN: sweep up, then down. The current sweep direction is
    /// part of the discipline state.
    Scan {
        /// Whether the head is currently sweeping toward higher cylinders.
        ascending: bool,
    },
    /// Shortest seek time first: nearest cylinder next.
    Sstf,
}

impl Discipline {
    /// Selects the index of the next request to serve from `queue`.
    ///
    /// `cylinders[i]` must be the target cylinder of `queue[i]`, and
    /// `head` the cylinder currently under the head. Returns `None` for an
    /// empty queue. Ties are broken by arrival order (`seq`), which keeps
    /// every discipline deterministic and starvation-free for CSCAN.
    pub fn select(&mut self, queue: &[Pending], cylinders: &[u64], head: u64) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        debug_assert_eq!(queue.len(), cylinders.len());
        match *self {
            Discipline::Fcfs => queue
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.seq, *i))
                .map(|(i, _)| i),
            Discipline::Cscan => {
                // Candidates at or ahead of the head, else wrap to lowest.
                let ahead = best_by(queue, cylinders, |c| c >= head);
                ahead.or_else(|| best_by(queue, cylinders, |_| true))
            }
            Discipline::Scan { ref mut ascending } => {
                let pick = if *ascending {
                    best_by(queue, cylinders, |c| c >= head)
                } else {
                    best_desc_by(queue, cylinders, |c| c <= head)
                };
                match pick {
                    Some(i) => Some(i),
                    None => {
                        *ascending = !*ascending;
                        if *ascending {
                            best_by(queue, cylinders, |_| true)
                        } else {
                            best_desc_by(queue, cylinders, |_| true)
                        }
                    }
                }
            }
            Discipline::Sstf => queue
                .iter()
                .enumerate()
                .min_by_key(|&(i, p)| (cylinders[i].abs_diff(head), p.seq))
                .map(|(i, _)| i),
        }
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::Cscan => "cscan",
            Discipline::Scan { .. } => "scan",
            Discipline::Sstf => "sstf",
        }
    }
}

/// Lowest-cylinder candidate satisfying `pred`, ties by arrival.
fn best_by(queue: &[Pending], cylinders: &[u64], pred: impl Fn(u64) -> bool) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|&(i, _)| pred(cylinders[i]))
        .min_by_key(|&(i, p)| (cylinders[i], p.seq))
        .map(|(i, _)| i)
}

/// Highest-cylinder candidate satisfying `pred`, ties by arrival.
fn best_desc_by(queue: &[Pending], cylinders: &[u64], pred: impl Fn(u64) -> bool) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|&(i, _)| pred(cylinders[i]))
        .max_by_key(|&(i, p)| (cylinders[i], u64::MAX - p.seq))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::SectorSpan;
    use parcache_types::{BlockId, Nanos};

    fn pending(seq: u64, sector: u64) -> Pending {
        Pending {
            block: BlockId(seq),
            span: SectorSpan {
                start: sector,
                len: 16,
            },
            enqueued: Nanos::ZERO,
            seq,
            kind: crate::disk::ReqKind::Read,
        }
    }

    fn queue_with_cyls(cyls: &[u64]) -> (Vec<Pending>, Vec<u64>) {
        let q: Vec<Pending> = cyls
            .iter()
            .enumerate()
            .map(|(i, &c)| pending(i as u64, c * 1368))
            .collect();
        (q, cyls.to_vec())
    }

    #[test]
    fn fcfs_is_arrival_order() {
        let (q, c) = queue_with_cyls(&[500, 10, 300]);
        let mut d = Discipline::Fcfs;
        assert_eq!(d.select(&q, &c, 0), Some(0));
    }

    #[test]
    fn cscan_serves_ahead_of_head_first() {
        let (q, c) = queue_with_cyls(&[500, 10, 300]);
        let mut d = Discipline::Cscan;
        // Head at 100: candidates ahead are 300 and 500 -> pick 300.
        assert_eq!(d.select(&q, &c, 100), Some(2));
    }

    #[test]
    fn cscan_wraps_to_lowest() {
        let (q, c) = queue_with_cyls(&[500, 10, 300]);
        let mut d = Discipline::Cscan;
        // Head at 600: nothing ahead -> wrap to cylinder 10.
        assert_eq!(d.select(&q, &c, 600), Some(1));
    }

    #[test]
    fn scan_reverses_at_the_edge() {
        let (q, c) = queue_with_cyls(&[500, 10]);
        let mut d = Discipline::Scan { ascending: true };
        assert_eq!(d.select(&q, &c, 600), Some(0)); // reverses, picks 500
        assert!(matches!(d, Discipline::Scan { ascending: false }));
    }

    #[test]
    fn sstf_picks_nearest() {
        let (q, c) = queue_with_cyls(&[500, 10, 300]);
        let mut d = Discipline::Sstf;
        assert_eq!(d.select(&q, &c, 280), Some(2));
        assert_eq!(d.select(&q, &c, 40), Some(1));
    }

    #[test]
    fn empty_queue_selects_nothing() {
        let mut d = Discipline::Cscan;
        assert_eq!(d.select(&[], &[], 0), None);
    }

    #[test]
    fn cscan_ties_break_by_arrival() {
        let q = vec![pending(5, 1368), pending(2, 1368)];
        let c = vec![1, 1];
        let mut d = Discipline::Cscan;
        assert_eq!(d.select(&q, &c, 0), Some(1));
    }

    #[test]
    fn names() {
        assert_eq!(Discipline::Fcfs.name(), "fcfs");
        assert_eq!(Discipline::Cscan.name(), "cscan");
        assert_eq!(Discipline::Scan { ascending: true }.name(), "scan");
        assert_eq!(Discipline::Sstf.name(), "sstf");
    }
}
