//! A single drive: service-time model + request queue + head scheduler.
//!
//! Fetches to one disk are serialized (§2.1); the drive serves one request
//! at a time, choosing the next per its [`Discipline`] whenever it becomes
//! idle and the queue is non-empty.

use crate::geometry::SectorSpan;
use crate::model::{DiskModel, ServiceOutcome};
use crate::probe::DiskEvent;
use crate::sched::Discipline;
use parcache_types::{BlockId, Nanos};

/// Whether a request reads or writes the media. The paper's evaluation is
/// read-only (§3); writes exist for the write-behind extension (§6) and
/// are serviced with identical mechanics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A (pre)fetch.
    Read,
    /// A write-behind flush.
    Write,
}

/// A queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// The logical block involved (opaque to the drive; carried so the
    /// caller can tell which request completed).
    pub block: BlockId,
    /// The physical sectors accessed.
    pub span: SectorSpan,
    /// When the request entered the queue.
    pub enqueued: Nanos,
    /// Global arrival sequence number (FCFS key, tie-breaker elsewhere).
    pub seq: u64,
    /// Read or write.
    pub kind: ReqKind,
}

/// Whether [`Disk::enqueue`] accepted the request. A drive inside a hard
/// outage window rejects new arrivals; the caller decides whether to
/// retry later or abandon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a rejected request was not queued and will never complete"]
pub enum EnqueueOutcome {
    /// The request entered the queue.
    Accepted,
    /// The drive is out of service; nothing was queued.
    Rejected,
}

impl EnqueueOutcome {
    /// True when the request was turned away.
    pub fn is_rejected(&self) -> bool {
        *self == EnqueueOutcome::Rejected
    }
}

/// A request currently being serviced.
#[derive(Debug, Clone, Copy)]
struct InService {
    request: Pending,
    completes: Nanos,
    started: Nanos,
    outcome: ServiceOutcome,
}

/// A finished request, as reported by [`Disk::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completed {
    /// The block involved.
    pub block: BlockId,
    /// Pure service time (completion minus service start).
    pub service: Nanos,
    /// Response time (completion minus enqueue).
    pub response: Nanos,
    /// Read or write.
    pub kind: ReqKind,
    /// Whether the attempt delivered its data ([`ServiceOutcome::Ok`] on
    /// a healthy drive; a media error means the caller must retry).
    pub outcome: ServiceOutcome,
}

/// Aggregate per-drive statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Requests fully and successfully serviced.
    pub served: u64,
    /// Attempts that ended in a media error. The time they burned is in
    /// `busy`, but they contribute to no other field.
    pub failed: u64,
    /// Total time the drive spent servicing requests (successful or not).
    pub busy: Nanos,
    /// Sum of response times (completion minus enqueue) over successful
    /// requests, for averages.
    pub total_response: Nanos,
    /// Sum of pure service times over successful requests.
    pub total_service: Nanos,
}

impl DiskStats {
    /// Mean response time (queueing + service) per request, rounded to
    /// the nearest nanosecond.
    pub fn avg_response(&self) -> Nanos {
        self.total_response.div_rounded(self.served)
    }

    /// Mean pure service time per request, rounded to the nearest
    /// nanosecond.
    pub fn avg_service(&self) -> Nanos {
        self.total_service.div_rounded(self.served)
    }
}

/// One drive of the array.
pub struct Disk {
    model: Box<dyn DiskModel>,
    discipline: Discipline,
    /// The discipline as constructed, so [`Disk::reset`] can restore
    /// scheduler state (SCAN's sweep direction) and not just clear queues.
    initial_discipline: Discipline,
    queue: Vec<Pending>,
    in_service: Option<InService>,
    next_seq: u64,
    stats: DiskStats,
    /// Scratch for per-candidate cylinder numbers during selection;
    /// reused across service starts so the hot path allocates nothing.
    cyl_scratch: Vec<u64>,
}

impl Disk {
    /// Creates a drive from a model and a scheduling discipline.
    pub fn new(model: Box<dyn DiskModel>, discipline: Discipline) -> Disk {
        Disk {
            model,
            discipline,
            initial_discipline: discipline,
            queue: Vec::new(),
            in_service: None,
            next_seq: 0,
            stats: DiskStats::default(),
            cyl_scratch: Vec::new(),
        }
    }

    /// True when the drive is idle *and* has nothing queued — the "disk is
    /// free" condition the aggressive family of algorithms keys on.
    pub fn is_free(&self) -> bool {
        self.in_service.is_none() && self.queue.is_empty()
    }

    /// True when the drive is neither serving nor holding any request.
    pub fn is_idle(&self) -> bool {
        self.in_service.is_none()
    }

    /// Number of requests waiting or in service.
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Enqueues a read of `span` for logical `block` at time `now`, then
    /// starts it immediately if the drive is idle. Rejected (with no
    /// state change) when the drive is inside a hard outage window.
    pub fn enqueue(&mut self, now: Nanos, block: BlockId, span: SectorSpan) -> EnqueueOutcome {
        self.enqueue_observed(now, block, span, |_| {})
    }

    /// Enqueues a write-behind flush of `span` for logical `block`.
    pub fn enqueue_write(
        &mut self,
        now: Nanos,
        block: BlockId,
        span: SectorSpan,
    ) -> EnqueueOutcome {
        self.enqueue_write_observed(now, block, span, |_| {})
    }

    /// [`Disk::enqueue`], reporting [`DiskEvent`]s to `observe`.
    pub fn enqueue_observed(
        &mut self,
        now: Nanos,
        block: BlockId,
        span: SectorSpan,
        mut observe: impl FnMut(DiskEvent),
    ) -> EnqueueOutcome {
        self.enqueue_kind(now, block, span, ReqKind::Read, &mut observe)
    }

    /// [`Disk::enqueue_write`], reporting [`DiskEvent`]s to `observe`.
    pub fn enqueue_write_observed(
        &mut self,
        now: Nanos,
        block: BlockId,
        span: SectorSpan,
        mut observe: impl FnMut(DiskEvent),
    ) -> EnqueueOutcome {
        self.enqueue_kind(now, block, span, ReqKind::Write, &mut observe)
    }

    fn enqueue_kind(
        &mut self,
        now: Nanos,
        block: BlockId,
        span: SectorSpan,
        kind: ReqKind,
        observe: &mut impl FnMut(DiskEvent),
    ) -> EnqueueOutcome {
        if self.model.outage_until(now).is_some() {
            // Out of service: the arrival is turned away before it touches
            // any drive state, so no event is emitted and nothing leaks.
            return EnqueueOutcome::Rejected;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Pending {
            block,
            span,
            enqueued: now,
            seq,
            kind,
        });
        observe(DiskEvent::Enqueued {
            block,
            kind,
            depth: self.load(),
        });
        self.maybe_start_observed(now, observe);
        EnqueueOutcome::Accepted
    }

    /// If idle and work is queued, picks the next request per the
    /// discipline and begins servicing it.
    pub fn maybe_start(&mut self, now: Nanos) {
        self.maybe_start_observed(now, &mut |_| {});
    }

    fn maybe_start_observed(&mut self, now: Nanos, observe: &mut impl FnMut(DiskEvent)) {
        if self.in_service.is_some() || self.queue.is_empty() {
            return;
        }
        self.cyl_scratch.clear();
        self.cyl_scratch.extend(
            self.queue
                .iter()
                .map(|p| self.model.cylinder_of(p.span.start)),
        );
        let head = self.model.head_cylinder();
        let idx = self
            .discipline
            .select(&self.queue, &self.cyl_scratch, head)
            .expect("non-empty queue must select a request");
        let request = self.queue.swap_remove(idx);
        // A request already in the queue when an outage begins is not
        // lost: its service start is deferred to the window's end, so the
        // completion event wakes the simulation exactly at recovery. The
        // loop handles back-to-back windows; outage windows are merged by
        // the fault plan, so it takes at most a few steps.
        let mut start = now;
        while let Some(until) = self.model.outage_until(start) {
            start = until;
        }
        let attempt = self.model.service_attempt(start, &request.span);
        self.in_service = Some(InService {
            request,
            completes: attempt.completes,
            started: start,
            outcome: attempt.outcome,
        });
        observe(DiskEvent::ServiceStarted {
            block: request.block,
            kind: request.kind,
            head_cylinder: self.model.head_cylinder(),
            completes: attempt.completes,
        });
    }

    /// The completion time of the request in service, if any.
    pub fn next_completion(&self) -> Option<Nanos> {
        self.in_service.as_ref().map(|s| s.completes)
    }

    /// Completes the in-service request (which must complete at exactly
    /// `now`), records statistics, starts the next queued request, and
    /// returns the finished fetch.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service or if `now` is not its
    /// completion time — either indicates a broken event loop.
    pub fn complete(&mut self, now: Nanos) -> Completed {
        self.complete_observed(now, |_| {})
    }

    /// [`Disk::complete`], reporting [`DiskEvent`]s to `observe` (the
    /// completion itself, plus the start of the next queued request, if
    /// any).
    pub fn complete_observed(
        &mut self,
        now: Nanos,
        mut observe: impl FnMut(DiskEvent),
    ) -> Completed {
        let s = self
            .in_service
            .take()
            .expect("complete() with no request in service");
        assert_eq!(s.completes, now, "completion processed at the wrong time");
        let done = Completed {
            block: s.request.block,
            service: s.completes - s.started,
            response: s.completes - s.request.enqueued,
            kind: s.request.kind,
            outcome: s.outcome,
        };
        if s.outcome.is_ok() {
            self.stats.served += 1;
            self.stats.busy += done.service;
            self.stats.total_service += done.service;
            self.stats.total_response += done.response;
        } else {
            // A media error burned real platter time (busy) but delivered
            // nothing, so it is kept out of every served-request average.
            self.stats.failed += 1;
            self.stats.busy += done.service;
        }
        observe(DiskEvent::ServiceCompleted {
            block: done.block,
            kind: done.kind,
            service: done.service,
            response: done.response,
            head_cylinder: self.model.head_cylinder(),
            // One queued request (if any) is about to enter service, so the
            // post-completion load equals the queue length.
            depth: self.queue.len(),
            outcome: s.outcome,
        });
        self.maybe_start_observed(now, &mut observe);
        done
    }

    /// Current head position (cylinder) of the drive model.
    pub fn head_cylinder(&self) -> u64 {
        self.model.head_cylinder()
    }

    /// Accumulated statistics over *completed* requests only.
    ///
    /// A request still in service contributes nothing here; use
    /// [`Disk::stats_at`] for end-of-run accounting so partial in-service
    /// time is not lost.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Statistics as of `now`, crediting the partial service time of any
    /// request still on the platter (`started..min(now, completes)`).
    ///
    /// Without this, a run that ends while a request is in service
    /// undercounts `busy` — and therefore utilization — which is visible
    /// on short traces (the Table 4/8 metric).
    pub fn stats_at(&self, now: Nanos) -> DiskStats {
        let mut s = self.stats;
        s.busy += self.in_service_busy(now);
        s
    }

    /// Busy time accrued by the in-service request as of `now` (zero when
    /// the drive is idle, and zero while an outage defers the start past
    /// `now` — `Nanos` subtraction saturates, which is exactly right: a
    /// drive waiting out an outage is not busy).
    fn in_service_busy(&self, now: Nanos) -> Nanos {
        match &self.in_service {
            Some(s) => now.min(s.completes) - s.started,
            None => Nanos::ZERO,
        }
    }

    /// The scheduling discipline in use.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// The block the drive is servicing right now, if any. Queued blocks
    /// are not in service: a stalled-on request that is merely queued is
    /// waiting on head contention, not on its own platter time — the
    /// distinction the engine's stall provenance needs.
    pub fn in_service_block(&self) -> Option<BlockId> {
        self.in_service.as_ref().map(|s| s.request.block)
    }

    /// The block of the read the drive is servicing right now, `None`
    /// when idle or servicing a write-behind flush. A write delivers no
    /// data to a waiter, so provenance treats it as contention.
    pub fn in_service_read(&self) -> Option<BlockId> {
        self.in_service
            .as_ref()
            .filter(|s| s.request.kind == ReqKind::Read)
            .map(|s| s.request.block)
    }

    /// Blocks currently queued or in service (the drive's outstanding set).
    pub fn outstanding(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.queue
            .iter()
            .map(|p| p.block)
            .chain(self.in_service.iter().map(|s| s.request.block))
    }

    /// Clears queue, in-service state, statistics, scheduler state, and
    /// the drive model. SCAN's sweep direction reverts to its initial
    /// value, so back-to-back runs on a reused drive are reproducible.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.in_service = None;
        self.next_seq = 0;
        self.stats = DiskStats::default();
        self.discipline = self.initial_discipline;
        self.model.reset();
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("model", &self.model.name())
            .field("discipline", &self.discipline.name())
            .field("queued", &self.queue.len())
            .field("in_service", &self.in_service.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDisk;

    /// Unwraps an [`EnqueueOutcome`] that must be `Accepted` (every test
    /// here runs on healthy drives unless it says otherwise).
    trait MustAccept {
        fn accepted(self);
    }
    impl MustAccept for EnqueueOutcome {
        fn accepted(self) {
            assert_eq!(self, EnqueueOutcome::Accepted);
        }
    }

    fn uniform_disk(ms: u64) -> Disk {
        Disk::new(
            Box::new(UniformDisk::new(Nanos::from_millis(ms))),
            Discipline::Fcfs,
        )
    }

    #[test]
    fn serializes_requests() {
        let mut d = uniform_disk(10);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(2), SectorSpan { start: 16, len: 16 })
            .accepted();
        assert_eq!(d.next_completion(), Some(Nanos::from_millis(10)));
        let first = d.complete(Nanos::from_millis(10));
        assert_eq!(first.block, BlockId(1));
        assert_eq!(first.service, Nanos::from_millis(10));
        // Second request starts only after the first completes.
        assert_eq!(d.next_completion(), Some(Nanos::from_millis(20)));
        let second = d.complete(Nanos::from_millis(20));
        assert_eq!(second.block, BlockId(2));
        // It waited 10ms in queue: response is 20ms.
        assert_eq!(second.response, Nanos::from_millis(20));
        assert!(d.is_free());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = uniform_disk(5);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(2), SectorSpan { start: 16, len: 16 })
            .accepted();
        d.complete(Nanos::from_millis(5));
        d.complete(Nanos::from_millis(10));
        let s = d.stats();
        assert_eq!(s.served, 2);
        assert_eq!(s.busy, Nanos::from_millis(10));
        assert_eq!(s.avg_service(), Nanos::from_millis(5));
        // Responses: 5ms and 10ms -> average 7.5ms.
        assert_eq!(s.avg_response(), Nanos(7_500_000));
    }

    #[test]
    fn load_and_outstanding() {
        let mut d = uniform_disk(5);
        assert_eq!(d.load(), 0);
        d.enqueue(Nanos::ZERO, BlockId(9), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(8), SectorSpan { start: 16, len: 16 })
            .accepted();
        assert_eq!(d.load(), 2);
        let out: Vec<BlockId> = d.outstanding().collect();
        assert!(out.contains(&BlockId(9)) && out.contains(&BlockId(8)));
        assert!(!d.is_free());
        assert!(!d.is_idle());
    }

    #[test]
    #[should_panic(expected = "wrong time")]
    fn completing_at_wrong_time_panics() {
        let mut d = uniform_disk(5);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.complete(Nanos::from_millis(99));
    }

    #[test]
    fn writes_share_the_queue_and_report_their_kind() {
        let mut d = uniform_disk(5);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.enqueue_write(Nanos::ZERO, BlockId(2), SectorSpan { start: 16, len: 16 })
            .accepted();
        let first = d.complete(Nanos::from_millis(5));
        assert_eq!((first.block, first.kind), (BlockId(1), ReqKind::Read));
        let second = d.complete(Nanos::from_millis(10));
        assert_eq!((second.block, second.kind), (BlockId(2), ReqKind::Write));
        assert_eq!(d.stats().served, 2);
    }

    #[test]
    fn stats_at_credits_partial_in_service_time() {
        let mut d = uniform_disk(10);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        // Completed stats see nothing mid-service...
        assert_eq!(d.stats().busy, Nanos::ZERO);
        // ...but stats_at credits the elapsed portion,
        assert_eq!(
            d.stats_at(Nanos::from_millis(4)).busy,
            Nanos::from_millis(4)
        );
        // capped at the service time even past completion,
        assert_eq!(
            d.stats_at(Nanos::from_millis(99)).busy,
            Nanos::from_millis(10)
        );
        // and completion-only fields are untouched.
        assert_eq!(d.stats_at(Nanos::from_millis(4)).served, 0);
        // After completion the two views agree.
        d.complete(Nanos::from_millis(10));
        assert_eq!(d.stats_at(Nanos::from_millis(10)), d.stats());
        assert_eq!(d.stats().busy, Nanos::from_millis(10));
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = uniform_disk(5);
        d.enqueue(Nanos::ZERO, BlockId(1), SectorSpan { start: 0, len: 16 })
            .accepted();
        d.reset();
        assert!(d.is_free());
        assert_eq!(d.stats(), DiskStats::default());
    }

    /// Span starting at the first sector of cylinder `c` (HP geometry:
    /// 1368 sectors per cylinder, matching [`CoarseDisk`]'s mapping).
    fn span_at_cylinder(c: u64) -> SectorSpan {
        SectorSpan {
            start: c * 1368,
            len: 16,
        }
    }

    #[test]
    fn reset_restores_scan_sweep_direction() {
        use crate::coarse::CoarseDisk;
        let mut d = Disk::new(
            Box::new(CoarseDisk::new()),
            Discipline::Scan { ascending: true },
        );
        // Serve cylinder 500, then a request behind the head: SCAN finds
        // nothing ahead and reverses, leaving the discipline descending.
        d.enqueue(Nanos::ZERO, BlockId(1), span_at_cylinder(500))
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(2), span_at_cylinder(10))
            .accepted();
        let t = d.next_completion().unwrap();
        d.complete(t);
        assert_eq!(d.discipline(), Discipline::Scan { ascending: false });

        // A reset mid-sweep must restore the constructed direction, or
        // back-to-back runs on a reused drive diverge.
        d.reset();
        assert_eq!(d.discipline(), Discipline::Scan { ascending: true });

        // Behavioral check: head back at 500 with candidates on both
        // sides, an ascending sweep picks 900 next; a stale descending
        // sweep would have picked 10.
        d.enqueue(Nanos::ZERO, BlockId(1), span_at_cylinder(500))
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(2), span_at_cylinder(10))
            .accepted();
        d.enqueue(Nanos::ZERO, BlockId(3), span_at_cylinder(900))
            .accepted();
        let t = d.next_completion().unwrap();
        assert_eq!(d.complete(t).block, BlockId(1));
        let t = d.next_completion().unwrap();
        assert_eq!(d.complete(t).block, BlockId(3));
    }

    use crate::fault::{FaultPlan, FaultyDisk};

    /// A 5ms uniform drive wrapped with the given fault spec.
    fn faulty_disk(spec: &str) -> Disk {
        let plan = FaultPlan::parse(spec).unwrap();
        Disk::new(
            Box::new(FaultyDisk::new(
                Box::new(UniformDisk::new(Nanos::from_millis(5))),
                plan.for_disk(0).unwrap(),
                plan.rng_for_disk(0),
            )),
            Discipline::Fcfs,
        )
    }

    #[test]
    fn outage_rejects_new_arrivals_without_touching_state() {
        let mut d = faulty_disk("outage:0:10:20");
        let span = SectorSpan { start: 0, len: 16 };
        assert!(d
            .enqueue(Nanos::from_millis(15), BlockId(1), span)
            .is_rejected());
        assert!(d.is_free());
        assert_eq!(d.load(), 0);
        assert_eq!(d.stats(), DiskStats::default());
        // After the window the same request is accepted.
        d.enqueue(Nanos::from_millis(20), BlockId(1), span)
            .accepted();
        assert_eq!(d.next_completion(), Some(Nanos::from_millis(25)));
    }

    #[test]
    fn outage_defers_queued_service_to_window_end() {
        let mut d = faulty_disk("outage:0:10:20");
        let span = SectorSpan { start: 0, len: 16 };
        // Enqueued before the outage with a request ahead of it: when the
        // first completes at t=12 (mid-outage), the second's start defers
        // to t=20 and it completes at t=25.
        d.enqueue(Nanos::from_millis(7), BlockId(1), span)
            .accepted();
        d.enqueue(
            Nanos::from_millis(7),
            BlockId(2),
            SectorSpan { start: 16, len: 16 },
        )
        .accepted();
        let first = d.complete(Nanos::from_millis(12));
        assert_eq!(first.block, BlockId(1));
        assert_eq!(d.next_completion(), Some(Nanos::from_millis(25)));
        // Waiting out the outage is not busy time...
        assert_eq!(
            d.stats_at(Nanos::from_millis(15)).busy,
            Nanos::from_millis(5)
        );
        let second = d.complete(Nanos::from_millis(25));
        // ...and the deferred wait shows up in response, not service.
        assert_eq!(second.service, Nanos::from_millis(5));
        assert_eq!(second.response, Nanos::from_millis(18));
    }

    #[test]
    fn media_errors_count_as_failed_not_served() {
        // p = 0.999…-ish would be flaky to assert on; instead drive the
        // RNG deterministically with a high probability and count both
        // outcomes over a fixed number of attempts.
        let mut d = faulty_disk("flaky:0:0.5,seed:11");
        let span = SectorSpan { start: 0, len: 16 };
        let mut t = Nanos::ZERO;
        for i in 0..32u64 {
            d.enqueue(t, BlockId(i), span).accepted();
            t = d.next_completion().unwrap();
            let done = d.complete(t);
            assert_eq!(done.service, Nanos::from_millis(5));
        }
        let s = d.stats();
        assert_eq!(s.served + s.failed, 32);
        assert!(s.failed > 0, "seed 11 must produce at least one error");
        assert!(s.served > 0, "seed 11 must produce at least one success");
        // Every attempt (failed or not) burned 5ms of platter time...
        assert_eq!(s.busy, Nanos::from_millis(5 * 32));
        // ...but the served averages exclude the failures.
        assert_eq!(s.total_service, Nanos::from_millis(5 * s.served));
        assert_eq!(s.avg_service(), Nanos::from_millis(5));
    }

    #[test]
    fn reset_clears_fault_state_and_replays_identically() {
        let mut d = faulty_disk("flaky:0:0.5,seed:11");
        let span = SectorSpan { start: 0, len: 16 };
        let run = |d: &mut Disk| -> (Vec<ServiceOutcome>, DiskStats) {
            let mut outcomes = Vec::new();
            let mut t = Nanos::ZERO;
            for i in 0..32u64 {
                d.enqueue(t, BlockId(i), span).accepted();
                t = d.next_completion().unwrap();
                outcomes.push(d.complete(t).outcome);
            }
            (outcomes, d.stats())
        };
        let (first, stats) = run(&mut d);
        assert!(stats.failed > 0);
        // Reset must clear the failure counter and rewind the fault RNG:
        // a reused drive replays the exact same error sequence (the same
        // bug class as the SCAN sweep-direction leak).
        d.reset();
        assert_eq!(d.stats(), DiskStats::default());
        assert_eq!(d.stats().failed, 0);
        let (second, stats2) = run(&mut d);
        assert_eq!(first, second);
        assert_eq!(stats, stats2);
    }
}
