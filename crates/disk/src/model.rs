//! The disk-model abstraction.
//!
//! A disk model answers one question: if a read of a given sector span is
//! started at a given time, when does it complete? Models are stateful —
//! the answer depends on head position, rotational phase, and readahead
//! buffer contents — and the state is updated by each call.

use crate::geometry::SectorSpan;
use parcache_types::Nanos;

/// A stateful single-drive service-time model.
pub trait DiskModel {
    /// Services a read of `span` beginning at time `now`.
    ///
    /// Returns the completion time (`>= now`) and updates internal state
    /// (head position, rotational phase, readahead buffer).
    fn service(&mut self, now: Nanos, span: &SectorSpan) -> Nanos;

    /// The cylinder containing `sector`, used by position-aware schedulers.
    fn cylinder_of(&self, sector: u64) -> u64;

    /// The cylinder currently under the head.
    fn head_cylinder(&self) -> u64;

    /// Restores the model to its initial state.
    fn reset(&mut self);

    /// A short human-readable name (for reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDisk;

    #[test]
    fn trait_object_is_usable() {
        let mut m: Box<dyn DiskModel> = Box::new(UniformDisk::new(Nanos::from_millis(5)));
        let done = m.service(Nanos::from_millis(1), &SectorSpan { start: 0, len: 16 });
        assert_eq!(done, Nanos::from_millis(6));
        assert_eq!(m.name(), "uniform");
    }
}
