//! The disk-model abstraction.
//!
//! A disk model answers one question: if a read of a given sector span is
//! started at a given time, when does it complete? Models are stateful —
//! the answer depends on head position, rotational phase, and readahead
//! buffer contents — and the state is updated by each call.

use crate::geometry::SectorSpan;
use parcache_types::Nanos;

/// Whether a service attempt delivered its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOutcome {
    /// The attempt succeeded.
    Ok,
    /// The media error path: the time was spent but the data never
    /// arrived; the caller must retry or abandon the request.
    MediaError,
}

impl ServiceOutcome {
    /// True for a successful attempt.
    pub fn is_ok(&self) -> bool {
        *self == ServiceOutcome::Ok
    }
}

/// One service attempt: when the drive is done with it, and whether the
/// data actually arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Completion time of the attempt (`>=` its start time).
    pub completes: Nanos,
    /// Whether the attempt delivered the data.
    pub outcome: ServiceOutcome,
}

/// A stateful single-drive service-time model.
pub trait DiskModel {
    /// Services a read of `span` beginning at time `now`.
    ///
    /// Returns the completion time (`>= now`) and updates internal state
    /// (head position, rotational phase, readahead buffer).
    fn service(&mut self, now: Nanos, span: &SectorSpan) -> Nanos;

    /// [`DiskModel::service`] with an explicit outcome. Fault-free models
    /// keep the default (every attempt succeeds); fault-injecting
    /// wrappers override it to report media errors.
    fn service_attempt(&mut self, now: Nanos, span: &SectorSpan) -> Attempt {
        Attempt {
            completes: self.service(now, span),
            outcome: ServiceOutcome::Ok,
        }
    }

    /// When `now` falls inside a hard outage window, the window's end;
    /// `None` on a healthy drive (the default). During an outage the
    /// drive rejects new requests and defers starting queued ones.
    fn outage_until(&self, _now: Nanos) -> Option<Nanos> {
        None
    }

    /// The cylinder containing `sector`, used by position-aware schedulers.
    fn cylinder_of(&self, sector: u64) -> u64;

    /// The cylinder currently under the head.
    fn head_cylinder(&self) -> u64;

    /// Restores the model to its initial state.
    fn reset(&mut self);

    /// A short human-readable name (for reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDisk;

    #[test]
    fn trait_object_is_usable() {
        let mut m: Box<dyn DiskModel> = Box::new(UniformDisk::new(Nanos::from_millis(5)));
        let done = m.service(Nanos::from_millis(1), &SectorSpan { start: 0, len: 16 });
        assert_eq!(done, Nanos::from_millis(6));
        assert_eq!(m.name(), "uniform");
    }

    #[test]
    fn default_attempts_always_succeed_with_no_outages() {
        let mut m: Box<dyn DiskModel> = Box::new(UniformDisk::new(Nanos::from_millis(5)));
        let a = m.service_attempt(Nanos::ZERO, &SectorSpan { start: 0, len: 16 });
        assert_eq!(a.completes, Nanos::from_millis(5));
        assert!(a.outcome.is_ok());
        assert_eq!(m.outage_until(Nanos::ZERO), None);
    }
}
