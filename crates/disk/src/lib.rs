//! Disk models, head schedulers, arrays, and data layout for `parcache`.
//!
//! This crate provides the storage substrate of the simulator described in
//! Kimbrel et al., *A Trace-Driven Comparison of Algorithms for Parallel
//! Prefetching and Caching* (OSDI 1996), §3:
//!
//! * [`hp97560`] — a detailed model of the HP 97560 drive (seek curve,
//!   rotational position, media and bus transfer, 128 KB readahead cache),
//!   the drive the paper's UW simulator models.
//! * [`coarse`] — a second, independently parameterized coarse drive model,
//!   playing the role of the paper's CMU/RaidSim cross-validation simulator.
//! * [`uniform`] — the theoretical uniform fetch-time model of §2.1.
//! * [`sched`] — FCFS and CSCAN head scheduling (plus SCAN and SSTF).
//! * [`disk`] / [`mod@array`] — a single drive with a request queue, and an
//!   array of independently accessible drives.
//! * [`layout`] — one-block striping across the array and the paper's
//!   100-cylinder file-clustering groups.
//! * [`probe`] — low-level drive events for observers; the `*_observed`
//!   method variants report them to a caller-supplied closure.
//! * [`fault`] — deterministic fault injection: a seed-driven
//!   [`FaultPlan`] (transient media errors, fail-slow windows, hard
//!   outages) and the [`FaultyDisk`] model wrapper that applies it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod coarse;
pub mod disk;
pub mod fault;
pub mod geometry;
pub mod hp97560;
pub mod layout;
pub mod model;
pub mod probe;
pub mod sched;
pub mod seek;
pub mod uniform;

pub use array::DiskArray;
pub use disk::{Disk, DiskStats, EnqueueOutcome};
pub use fault::{
    DiskFaults, DiskSel, FaultKind, FaultParseError, FaultPlan, FaultSpec, FaultyDisk,
};
pub use geometry::{DiskGeometry, SectorSpan};
pub use hp97560::Hp97560;
pub use layout::Layout;
pub use model::{Attempt, DiskModel, ServiceOutcome};
pub use probe::DiskEvent;
pub use sched::Discipline;
pub use uniform::UniformDisk;
