//! A detailed service-time model of the HP 97560 disk drive.
//!
//! This reproduces, in Rust, the behavior the paper obtains from the Kotz
//! et al. simulator (itself based on Ruemmler & Wilkes): the Table 1
//! geometry, the published seek curve, rotational-position tracking on the
//! absolute simulation clock, sector-granularity media transfer, a 10 MB/s
//! SCSI bus, and a 128 KB readahead cache that keeps reading sequentially
//! past each mechanical access.
//!
//! Approximations relative to a cycle-accurate drive model, all documented
//! here because they bound what conclusions the simulator supports:
//!
//! * Tracks are angularly aligned and track skew is ideal: a multi-track
//!   media transfer pays a fixed head-switch (and cylinder-switch) penalty
//!   instead of re-synchronizing rotation.
//! * The readahead fill never stalls on a full buffer; instead the *hit
//!   window* is bounded to the buffer capacity ahead of the last consumed
//!   sector.
//! * Bus transfer overlaps media transfer on mechanical reads (the bus is
//!   4x faster than the media), so mechanical completion time is the media
//!   completion time.
//!
//! The tests validate the model against the figures the paper itself
//! quotes: ~22.8 ms average for random 8 KB accesses, 3-4 ms for sequential
//! runs, and a 7.24 ms maximum seek within a 100-cylinder group.

use crate::geometry::{DiskGeometry, SectorSpan};
use crate::model::DiskModel;
use crate::seek::SeekCurve;
use parcache_types::Nanos;

/// Time to read one sector off the media.
///
/// 4002 rpm gives a 14.99 ms rotation; with 72 sectors per track each
/// sector takes ~208.2 us under the head.
const SECTOR_TIME: Nanos = Nanos(208_229);

/// One full platter rotation (72 sector times, kept exactly consistent with
/// [`SECTOR_TIME`] so rotational arithmetic never drifts).
const ROTATION: Nanos = Nanos(SECTOR_TIME.0 * 72);

/// Fixed per-request controller/command overhead on the drive.
const CONTROLLER_OVERHEAD: Nanos = Nanos::from_micros(500);

/// Time to switch heads at a track boundary during a contiguous transfer.
const HEAD_SWITCH: Nanos = Nanos::from_micros(1_000);

/// Time to step to the adjacent cylinder during a contiguous transfer.
const CYLINDER_SWITCH: Nanos = Nanos::from_micros(2_000);

/// SCSI-II bus transfer time per sector: 512 bytes at 10 MB/s.
const BUS_SECTOR_TIME: Nanos = Nanos(51_200);

/// Readahead cache capacity in sectors (128 KB of 512-byte sectors).
const READAHEAD_SECTORS: u64 = 256;

/// Sequential readahead state: after a mechanical read the drive keeps
/// reading forward into its buffer until the end of the cylinder.
///
/// The fill's progress is tracked explicitly (`frontier` as of
/// `frontier_time`) rather than derived from the run's start, so a fill
/// that pauses — the buffer full, waiting for the host to consume — loses
/// real time. Back-dating the fill as if it had run continuously reported
/// sectors available before the media could have delivered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Readahead {
    /// Sector where the current fill run began (end of the mechanical
    /// read); the cylinder-end stop is fixed by this.
    origin: u64,
    /// Next sector the fill will read: sectors in
    /// `consumed_to..frontier` are buffered.
    frontier: u64,
    /// Fill progress timestamp: the frontier sector starts reading at
    /// `frontier_time` (or later, if the fill is paused).
    frontier_time: Nanos,
    /// Oldest still-buffered sector; earlier sectors have been discarded.
    consumed_to: u64,
}

impl Readahead {
    /// Advances the fill to `now` at media rate, stopping at the buffer
    /// capacity and the cylinder end. A fill that hits a stop pauses:
    /// its clock moves to `now` so no retroactive progress is credited
    /// once the stop lifts.
    fn advance(&mut self, now: Nanos, geometry: &DiskGeometry) {
        if now <= self.frontier_time {
            return;
        }
        let stop = self.stop(geometry);
        if self.frontier >= stop {
            // Already paused: the fill marks time until capacity frees.
            self.frontier_time = now;
            return;
        }
        let elapsed = now - self.frontier_time;
        let filled = elapsed.as_nanos() / SECTOR_TIME.as_nanos();
        if self.frontier + filled >= stop {
            self.frontier = stop;
            self.frontier_time = now;
        } else {
            self.frontier += filled;
            // Keep the sub-sector remainder: the frontier sector is
            // mid-read.
            self.frontier_time += SECTOR_TIME * filled;
        }
    }

    /// The sector (exclusive) at which the fill currently stops: buffer
    /// capacity ahead of the consumption point, or the cylinder end.
    fn stop(&self, geometry: &DiskGeometry) -> u64 {
        let by_capacity = self.consumed_to + READAHEAD_SECTORS;
        let by_cylinder = geometry.next_cylinder_start(self.origin);
        by_capacity.min(by_cylinder)
    }

    /// The latest sector (exclusive) this fill run can ever deliver.
    fn limit(&self, geometry: &DiskGeometry) -> u64 {
        self.stop(geometry)
    }

    /// When sector `upto` (exclusive) will have been buffered, given the
    /// fill keeps running from its current progress point.
    fn available_at(&self, upto: u64) -> Nanos {
        self.frontier_time + SECTOR_TIME * upto.saturating_sub(self.frontier)
    }
}

/// The HP 97560 drive model.
#[derive(Debug, Clone)]
pub struct Hp97560 {
    geometry: DiskGeometry,
    seek: SeekCurve,
    head_cylinder: u64,
    readahead: Option<Readahead>,
    readahead_enabled: bool,
    stats: ModelStats,
}

/// Internal service-mix counters, exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Requests served entirely from the readahead buffer.
    pub buffer_hits: u64,
    /// Requests that waited for the in-progress readahead fill.
    pub buffer_waits: u64,
    /// Requests that required a mechanical (seek + rotate) access.
    pub mechanical: u64,
}

impl Default for Hp97560 {
    fn default() -> Hp97560 {
        Hp97560::new()
    }
}

impl Hp97560 {
    /// Creates a drive with the paper's Table 1 geometry, head at cylinder 0.
    pub fn new() -> Hp97560 {
        Hp97560 {
            geometry: DiskGeometry::HP97560,
            seek: SeekCurve::HP97560,
            head_cylinder: 0,
            readahead: None,
            readahead_enabled: true,
            stats: ModelStats::default(),
        }
    }

    /// Creates a drive with the readahead cache disabled — every access
    /// is mechanical. Ablation: quantifies how much of the drive's
    /// sequential performance the 128 KB cache provides.
    pub fn without_readahead() -> Hp97560 {
        Hp97560 {
            readahead_enabled: false,
            ..Hp97560::new()
        }
    }

    /// The drive geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Service-mix counters accumulated since construction or [`reset`].
    ///
    /// [`reset`]: DiskModel::reset
    pub fn stats(&self) -> ModelStats {
        self.stats
    }

    /// Completion time of a full mechanical access started at `now`:
    /// controller overhead, seek, rotational latency, then media transfer
    /// with track/cylinder switch penalties. Pure — state is committed by
    /// the caller once the mechanical path is chosen.
    fn mechanical_completion(&self, now: Nanos, span: &SectorSpan) -> Nanos {
        let target_cyl = self.geometry.cylinder_of(span.start);
        let distance = target_cyl.abs_diff(self.head_cylinder);
        let after_seek = now + CONTROLLER_OVERHEAD + self.seek.seek_time(distance);

        // Rotational latency: wait for the target sector's angular position.
        let target_angle = SECTOR_TIME * self.geometry.rotational_index(span.start);
        let current_angle = Nanos(after_seek.as_nanos() % ROTATION.as_nanos());
        let rot_wait =
            Nanos((target_angle + ROTATION - current_angle).as_nanos() % ROTATION.as_nanos());

        let media = SECTOR_TIME * span.len
            + HEAD_SWITCH * self.geometry.track_crossings(span)
            + CYLINDER_SWITCH * self.geometry.cylinder_crossings(span);
        after_seek + rot_wait + media
    }

    /// Commits a mechanical access ending at `done`.
    fn commit_mechanical(&mut self, span: &SectorSpan, done: Nanos) {
        self.stats.mechanical += 1;
        self.head_cylinder = self.geometry.cylinder_of(span.end() - 1);
        self.readahead = self.readahead_enabled.then_some(Readahead {
            origin: span.end(),
            frontier: span.end(),
            frontier_time: done,
            consumed_to: span.end(),
        });
    }
}

impl DiskModel for Hp97560 {
    fn service(&mut self, now: Nanos, span: &SectorSpan) -> Nanos {
        if span.len == 0 {
            return now;
        }
        let mech_done = self.mechanical_completion(now, span);
        if let Some(ra) = self.readahead.as_mut() {
            ra.advance(now, &self.geometry);
        }
        if let Some(ra) = self.readahead {
            let within = span.start >= ra.consumed_to && span.end() <= ra.limit(&self.geometry);
            if within {
                let paused_for_capacity = ra.frontier == ra.consumed_to + READAHEAD_SECTORS
                    && ra.frontier < self.geometry.next_cylinder_start(ra.origin);
                let (hit, data_ready) = if span.end() <= ra.frontier {
                    (true, now)
                } else {
                    (false, ra.available_at(span.end()))
                };
                let done = data_ready.max(now + CONTROLLER_OVERHEAD) + BUS_SECTOR_TIME * span.len;
                // Firmware aborts the readahead when seeking is faster
                // than waiting for the fill to reach the data.
                if done <= mech_done {
                    if hit {
                        self.stats.buffer_hits += 1;
                    } else {
                        self.stats.buffer_waits += 1;
                    }
                    self.head_cylinder = self.geometry.cylinder_of(span.end() - 1);
                    let mut ra = ra;
                    ra.consumed_to = span.end();
                    if hit {
                        // Consuming the hit frees buffer frames; a fill
                        // paused on capacity resumes once this transfer
                        // has delivered the data — not retroactively.
                        if paused_for_capacity {
                            ra.frontier_time = done;
                        }
                    } else {
                        // The fill has read exactly up to the requested
                        // sectors at the moment they became available.
                        ra.frontier = span.end();
                        ra.frontier_time = data_ready;
                    }
                    self.readahead = Some(ra);
                    return done;
                }
            }
        }
        self.commit_mechanical(span, mech_done);
        mech_done
    }

    fn cylinder_of(&self, sector: u64) -> u64 {
        self.geometry.cylinder_of(sector)
    }

    fn head_cylinder(&self) -> u64 {
        self.head_cylinder
    }

    fn reset(&mut self) {
        self.head_cylinder = 0;
        self.readahead = None;
        self.stats = ModelStats::default();
    }

    fn name(&self) -> &'static str {
        "hp97560"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcache_types::rng::Rng;

    fn block_span(disk_block: u64) -> SectorSpan {
        SectorSpan::for_block(disk_block)
    }

    #[test]
    fn random_access_average_matches_table_1() {
        // Table 1: average 8 KB access time 22.8 ms. Our model should land
        // in the same neighborhood for uniformly random block reads.
        let mut d = Hp97560::new();
        let mut rng = Rng::seed_from_u64(42);
        let cap = d.geometry().capacity_blocks();
        let mut now = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        let n = 2000;
        for _ in 0..n {
            let b = rng.gen_range(0..cap);
            let done = d.service(now, &block_span(b));
            total += done - now;
            now = done;
        }
        let avg_ms = total.as_millis_f64() / n as f64;
        assert!(
            (18.0..28.0).contains(&avg_ms),
            "random average {avg_ms:.2} ms outside expected band"
        );
    }

    #[test]
    fn sequential_access_is_fast() {
        // Back-to-back sequential blocks should stream at roughly media
        // rate (~3.3 ms per 8 KB block), the regime the paper reports as
        // 3-4 ms response times on sequential traces.
        let mut d = Hp97560::new();
        let mut now = Nanos::ZERO;
        // Prime: first access is mechanical.
        now = d.service(now, &block_span(0));
        let mut total = Nanos::ZERO;
        let n = 80; // stays within the first cylinder (85 blocks).
        for b in 1..=n {
            let done = d.service(now, &block_span(b));
            total += done - now;
            now = done;
        }
        let avg_ms = total.as_millis_f64() / n as f64;
        assert!(
            (2.5..4.5).contains(&avg_ms),
            "sequential average {avg_ms:.2} ms outside expected band"
        );
    }

    #[test]
    fn idle_disk_fills_readahead_and_serves_from_buffer() {
        let mut d = Hp97560::new();
        let done = d.service(Nanos::ZERO, &block_span(0));
        // Leave the disk idle long enough to fill the readahead buffer,
        // then read the next block: it should be served at bus speed.
        let later = done + Nanos::from_millis(100);
        let done2 = d.service(later, &block_span(1));
        let service = done2 - later;
        let expect = CONTROLLER_OVERHEAD + BUS_SECTOR_TIME * 16;
        assert_eq!(service, expect, "buffered read took {service}");
        assert_eq!(d.stats().buffer_hits, 1);
    }

    #[test]
    fn backward_access_is_mechanical() {
        let mut d = Hp97560::new();
        let t1 = d.service(Nanos::ZERO, &block_span(100));
        let t2 = d.service(t1, &block_span(99));
        assert_eq!(d.stats().mechanical, 2);
        // A mechanical access includes at least the media transfer.
        assert!(t2 - t1 >= SECTOR_TIME * 16);
    }

    #[test]
    fn readahead_stops_at_cylinder_boundary() {
        let mut d = Hp97560::new();
        // Block 84 occupies sectors 1344..1360; cylinder 0 ends at 1368, so
        // block 85 (sectors 1360..1376) straddles the boundary and can never
        // be served by a fill run that began in cylinder 0.
        let done = d.service(Nanos::ZERO, &block_span(84));
        let later = done + Nanos::from_millis(200);
        d.service(later, &block_span(85));
        assert_eq!(d.stats().mechanical, 2);
    }

    #[test]
    fn service_is_monotone_in_time() {
        let mut d = Hp97560::new();
        let done = d.service(Nanos::from_millis(5), &block_span(1000));
        assert!(done > Nanos::from_millis(5));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = Hp97560::new();
        d.service(Nanos::ZERO, &block_span(50_000));
        assert_ne!(d.head_cylinder(), 0);
        d.reset();
        assert_eq!(d.head_cylinder(), 0);
        assert_eq!(d.stats(), ModelStats::default());
    }

    #[test]
    fn rotational_wait_is_bounded_by_one_rotation() {
        let mut d = Hp97560::new();
        let mut rng = Rng::seed_from_u64(7);
        let cap = d.geometry().capacity_blocks();
        let mut now = Nanos::ZERO;
        for _ in 0..500 {
            let b = rng.gen_range(0..cap);
            let span = block_span(b);
            let done = d.service(now, &span);
            let dist = d
                .geometry()
                .cylinder_of(span.start)
                .abs_diff(d.head_cylinder());
            let _ = dist;
            let upper = CONTROLLER_OVERHEAD
                + SeekCurve::HP97560.seek_time(1961)
                + ROTATION
                + SECTOR_TIME * 16
                + HEAD_SWITCH
                + CYLINDER_SWITCH;
            assert!(done - now <= upper, "service exceeded physical bound");
            now = done;
        }
    }

    #[test]
    fn disabled_readahead_makes_everything_mechanical() {
        let mut d = Hp97560::without_readahead();
        let mut now = Nanos::ZERO;
        for b in 0..20 {
            now = d.service(now, &block_span(b));
        }
        let s = d.stats();
        assert_eq!(s.mechanical, 20);
        assert_eq!(s.buffer_hits + s.buffer_waits, 0);
    }

    #[test]
    fn capacity_paused_fill_is_not_backdated() {
        let mut d = Hp97560::new();
        let t0 = d.service(Nanos::ZERO, &block_span(0));
        // Idle far past the point the 256-sector buffer fills (~53 ms):
        // the fill pauses at sector 272 for lack of space.
        let now = t0 + Nanos::from_millis(100);
        let done1 = d.service(now, &block_span(1));
        assert_eq!(d.stats().buffer_hits, 1);
        // Consuming block 1 freed 16 sectors, letting the paused fill
        // resume — at done1, not retroactively. Block 17 (sectors
        // 272..288) therefore cannot be ready before the media has read
        // 16 more sectors; back-dating the fill to the start of the run
        // reported it at bus speed (~1.3 ms).
        let done2 = d.service(done1, &block_span(17));
        assert!(
            done2 - done1 >= SECTOR_TIME * 16,
            "paused readahead back-dated: block served in {}",
            done2 - done1
        );
    }

    #[test]
    fn repeated_same_block_is_not_a_buffer_hit() {
        // The buffer only holds data *ahead* of the last access.
        let mut d = Hp97560::new();
        let t1 = d.service(Nanos::ZERO, &block_span(10));
        d.service(t1 + Nanos::from_millis(50), &block_span(10));
        assert_eq!(d.stats().mechanical, 2);
    }
}
