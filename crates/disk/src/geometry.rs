//! Physical disk geometry and sector addressing.
//!
//! A drive is a linear space of sectors organized as
//! `cylinders × tracks-per-cylinder × sectors-per-track`. Logical disk
//! blocks map to contiguous sector spans; the geometry decodes a sector
//! number into its cylinder (for seek distances and CSCAN ordering), track,
//! and rotational position.

use parcache_types::SECTORS_PER_BLOCK;

/// A contiguous span of sectors on one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorSpan {
    /// First sector of the span (absolute sector number on the disk).
    pub start: u64,
    /// Number of sectors.
    pub len: u64,
}

impl SectorSpan {
    /// Creates a span covering one 8 KB block starting at `disk_block`.
    pub fn for_block(disk_block: u64) -> SectorSpan {
        SectorSpan {
            start: disk_block * SECTORS_PER_BLOCK,
            len: SECTORS_PER_BLOCK,
        }
    }

    /// One past the last sector of the span.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The track/cylinder organization of a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Sectors on each track.
    pub sectors_per_track: u64,
    /// Tracks (surfaces) per cylinder.
    pub tracks_per_cylinder: u64,
    /// Number of cylinders.
    pub cylinders: u64,
}

impl DiskGeometry {
    /// The HP 97560 geometry from Table 1 of the paper.
    pub const HP97560: DiskGeometry = DiskGeometry {
        sectors_per_track: 72,
        tracks_per_cylinder: 19,
        cylinders: 1962,
    };

    /// Sectors per cylinder.
    pub fn sectors_per_cylinder(&self) -> u64 {
        self.sectors_per_track * self.tracks_per_cylinder
    }

    /// Total sectors on the drive.
    pub fn capacity_sectors(&self) -> u64 {
        self.sectors_per_cylinder() * self.cylinders
    }

    /// Total 8 KB blocks the drive can hold.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_sectors() / SECTORS_PER_BLOCK
    }

    /// The cylinder containing `sector`.
    pub fn cylinder_of(&self, sector: u64) -> u64 {
        sector / self.sectors_per_cylinder()
    }

    /// The track index within its cylinder containing `sector`.
    pub fn track_of(&self, sector: u64) -> u64 {
        (sector % self.sectors_per_cylinder()) / self.sectors_per_track
    }

    /// The rotational sector index (position around the platter) of `sector`.
    pub fn rotational_index(&self, sector: u64) -> u64 {
        sector % self.sectors_per_track
    }

    /// Number of track boundaries crossed when reading `span` contiguously.
    pub fn track_crossings(&self, span: &SectorSpan) -> u64 {
        if span.len == 0 {
            return 0;
        }
        let first = span.start / self.sectors_per_track;
        let last = (span.end() - 1) / self.sectors_per_track;
        last - first
    }

    /// Number of cylinder boundaries crossed when reading `span` contiguously.
    pub fn cylinder_crossings(&self, span: &SectorSpan) -> u64 {
        if span.len == 0 {
            return 0;
        }
        let first = self.cylinder_of(span.start);
        let last = self.cylinder_of(span.end() - 1);
        last - first
    }

    /// First sector of the cylinder *after* the one containing `sector`.
    pub fn next_cylinder_start(&self, sector: u64) -> u64 {
        (self.cylinder_of(sector) + 1) * self.sectors_per_cylinder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: DiskGeometry = DiskGeometry::HP97560;

    #[test]
    fn hp97560_capacity_matches_paper() {
        // 1962 cyl x 19 trk x 72 sec = 2,684,016 sectors = ~1.3 GB.
        assert_eq!(G.capacity_sectors(), 2_684_016);
        assert_eq!(G.capacity_blocks(), 167_751);
    }

    #[test]
    fn hundred_cylinder_group_is_8550_blocks() {
        // The paper places files within groups of 8550 8 KB blocks and notes
        // those occupy 100 cylinders on the HP 97560.
        let blocks_per_100_cyl = G.sectors_per_cylinder() * 100 / SECTORS_PER_BLOCK;
        assert_eq!(blocks_per_100_cyl, 8550);
    }

    #[test]
    fn sector_decoding() {
        let spc = G.sectors_per_cylinder(); // 1368
        assert_eq!(G.cylinder_of(0), 0);
        assert_eq!(G.cylinder_of(spc - 1), 0);
        assert_eq!(G.cylinder_of(spc), 1);
        assert_eq!(G.track_of(0), 0);
        assert_eq!(G.track_of(72), 1);
        assert_eq!(G.rotational_index(73), 1);
    }

    #[test]
    fn block_spans() {
        let s = SectorSpan::for_block(3);
        assert_eq!(s.start, 48);
        assert_eq!(s.len, 16);
        assert_eq!(s.end(), 64);
    }

    #[test]
    fn crossings() {
        // A block fully inside track 0.
        let inside = SectorSpan { start: 0, len: 16 };
        assert_eq!(G.track_crossings(&inside), 0);
        // A block straddling the track boundary at sector 72.
        let straddle = SectorSpan { start: 64, len: 16 };
        assert_eq!(G.track_crossings(&straddle), 1);
        assert_eq!(G.cylinder_crossings(&straddle), 0);
        // A span straddling a cylinder boundary (sector 1368).
        let cylspan = SectorSpan {
            start: 1360,
            len: 16,
        };
        assert_eq!(G.cylinder_crossings(&cylspan), 1);
    }

    #[test]
    fn next_cylinder_start_is_aligned() {
        assert_eq!(G.next_cylinder_start(0), 1368);
        assert_eq!(G.next_cylinder_start(1367), 1368);
        assert_eq!(G.next_cylinder_start(1368), 2736);
    }

    #[test]
    fn zero_length_span_has_no_crossings() {
        let z = SectorSpan { start: 71, len: 0 };
        assert_eq!(G.track_crossings(&z), 0);
        assert_eq!(G.cylinder_crossings(&z), 0);
    }
}
