//! A coarse second-opinion drive model for cross-validation.
//!
//! The paper validated its results across two independently written
//! simulators: UW's detailed HP 97560 model and CMU's RaidSim configured
//! for IBM 0661 "Lightning" drives, and reported that the remaining
//! differences between the two were consistent with the differences in the
//! disk models (Table 2). This module plays the RaidSim role: an
//! independently parameterized, deliberately coarser model — linear seek
//! curve, constant average rotational latency, a simple sequential-access
//! fast path instead of a readahead cache — with Lightning-like mechanics
//! scaled to the HP's capacity so the same traces fit both drives.

use crate::geometry::{DiskGeometry, SectorSpan};
use crate::model::DiskModel;
use parcache_types::Nanos;

/// Lightning-like geometry, scaled in cylinder count so the drive holds at
/// least as many blocks as the HP 97560 (traces are placed once and must
/// fit either drive).
const GEOMETRY: DiskGeometry = DiskGeometry {
    sectors_per_track: 48,
    tracks_per_cylinder: 14,
    cylinders: 4000,
};

/// Fixed per-request overhead (controller + command processing).
const OVERHEAD: Nanos = Nanos::from_micros(700);

/// Constant rotational latency: half a 4316 rpm rotation.
const HALF_ROTATION: Nanos = Nanos::from_micros(6_950);

/// Media time per sector (13.9 ms rotation / 48 sectors).
const SECTOR_TIME: Nanos = Nanos(289_583);

/// Linear seek curve parameters (milliseconds).
const SEEK_BASE_MS: f64 = 1.8;
const SEEK_PER_CYL_MS: f64 = 0.0065;

/// The coarse drive model.
#[derive(Debug, Clone)]
pub struct CoarseDisk {
    head_cylinder: u64,
    /// End sector of the previous read, for the sequential fast path.
    prev_end: Option<u64>,
}

impl Default for CoarseDisk {
    fn default() -> CoarseDisk {
        CoarseDisk::new()
    }
}

impl CoarseDisk {
    /// Creates a drive with the head at cylinder 0.
    pub fn new() -> CoarseDisk {
        CoarseDisk {
            head_cylinder: 0,
            prev_end: None,
        }
    }

    /// The drive geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &GEOMETRY
    }

    fn seek_time(&self, distance: u64) -> Nanos {
        if distance == 0 {
            Nanos::ZERO
        } else {
            Nanos::from_millis_f64(SEEK_BASE_MS + SEEK_PER_CYL_MS * distance as f64)
        }
    }
}

impl DiskModel for CoarseDisk {
    fn service(&mut self, now: Nanos, span: &SectorSpan) -> Nanos {
        if span.len == 0 {
            return now;
        }
        let transfer = SECTOR_TIME * span.len;
        let done = if self.prev_end == Some(span.start) {
            // Sequential continuation: media streaming, no repositioning.
            now + OVERHEAD + transfer
        } else {
            let target = GEOMETRY.cylinder_of(span.start);
            let seek = self.seek_time(target.abs_diff(self.head_cylinder));
            now + OVERHEAD + seek + HALF_ROTATION + transfer
        };
        self.head_cylinder = GEOMETRY.cylinder_of(span.end() - 1);
        self.prev_end = Some(span.end());
        done
    }

    fn cylinder_of(&self, sector: u64) -> u64 {
        GEOMETRY.cylinder_of(sector)
    }

    fn head_cylinder(&self) -> u64 {
        self.head_cylinder
    }

    fn reset(&mut self) {
        self.head_cylinder = 0;
        self.prev_end = None;
    }

    fn name(&self) -> &'static str {
        "coarse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_covers_hp97560() {
        assert!(GEOMETRY.capacity_blocks() >= DiskGeometry::HP97560.capacity_blocks());
    }

    #[test]
    fn sequential_fast_path() {
        let mut d = CoarseDisk::new();
        let t1 = d.service(Nanos::ZERO, &SectorSpan { start: 0, len: 16 });
        let t2 = d.service(t1, &SectorSpan { start: 16, len: 16 });
        let seq_service = t2 - t1;
        assert_eq!(seq_service, OVERHEAD + SECTOR_TIME * 16);
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut d = CoarseDisk::new();
        let far = SectorSpan {
            start: 2000 * GEOMETRY.sectors_per_cylinder(),
            len: 16,
        };
        let t = d.service(Nanos::ZERO, &far);
        let expected = OVERHEAD + d.seek_time(2000) + HALF_ROTATION + SECTOR_TIME * 16;
        assert_eq!(t, expected);
        assert_eq!(d.head_cylinder(), 2000);
    }

    #[test]
    fn average_random_time_is_comparable_to_hp() {
        use parcache_types::rng::Rng;
        let mut d = CoarseDisk::new();
        let mut rng = Rng::seed_from_u64(3);
        let mut now = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        let n = 1000;
        for _ in 0..n {
            let b = rng.gen_range(0..GEOMETRY.capacity_blocks());
            let span = SectorSpan::for_block(b);
            let done = d.service(now, &span);
            total += done - now;
            now = done;
        }
        let avg = total.as_millis_f64() / n as f64;
        assert!((15.0..30.0).contains(&avg), "avg {avg:.2} ms");
    }

    #[test]
    fn reset_clears_sequential_state() {
        let mut d = CoarseDisk::new();
        let t1 = d.service(Nanos::ZERO, &SectorSpan { start: 0, len: 16 });
        d.reset();
        let t2 = d.service(t1, &SectorSpan { start: 16, len: 16 });
        // After reset the continuation is no longer sequential.
        assert!(t2 - t1 > OVERHEAD + SECTOR_TIME * 16);
    }
}
