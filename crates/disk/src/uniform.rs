//! The uniform fetch-time model of the paper's theoretical framework (§2.1).
//!
//! Every read takes exactly the same fixed time regardless of position.
//! This is the model under which the aggressive and reverse aggressive
//! bounds are proved, and the model reverse aggressive uses internally for
//! its reverse-pass schedule construction.

use crate::geometry::SectorSpan;
use crate::model::DiskModel;
use parcache_types::Nanos;

/// A disk whose every access takes a constant `fetch_time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformDisk {
    fetch_time: Nanos,
}

impl UniformDisk {
    /// Creates a uniform disk with the given constant access time.
    pub fn new(fetch_time: Nanos) -> UniformDisk {
        UniformDisk { fetch_time }
    }

    /// The constant access time.
    pub fn fetch_time(&self) -> Nanos {
        self.fetch_time
    }
}

impl DiskModel for UniformDisk {
    fn service(&mut self, now: Nanos, _span: &SectorSpan) -> Nanos {
        now + self.fetch_time
    }

    fn cylinder_of(&self, _sector: u64) -> u64 {
        0
    }

    fn head_cylinder(&self) -> u64 {
        0
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_service_time() {
        let mut d = UniformDisk::new(Nanos::from_millis(15));
        let spans = [
            SectorSpan { start: 0, len: 16 },
            SectorSpan {
                start: 2_000_000,
                len: 16,
            },
        ];
        for (i, s) in spans.iter().enumerate() {
            let start = Nanos::from_millis(i as u64 * 100);
            assert_eq!(d.service(start, s), start + Nanos::from_millis(15));
        }
    }

    #[test]
    fn position_queries_are_trivial() {
        let d = UniformDisk::new(Nanos::from_millis(1));
        assert_eq!(d.cylinder_of(123_456), 0);
        assert_eq!(d.head_cylinder(), 0);
        assert_eq!(d.fetch_time(), Nanos::from_millis(1));
    }
}
