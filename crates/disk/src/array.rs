//! An array of independently accessible drives.
//!
//! Fetches on different disks execute concurrently; fetches to a single
//! disk are serialized (§2.1). The array owns the striping layout and
//! routes each logical block to its drive.

use crate::disk::{Completed, Disk, DiskStats, EnqueueOutcome};
use crate::layout::Layout;
use crate::model::DiskModel;
use crate::probe::DiskEvent;
use crate::sched::Discipline;
use parcache_types::{BlockId, DiskId, Nanos};

/// A striped array of drives.
pub struct DiskArray {
    disks: Vec<Disk>,
    layout: Layout,
}

impl DiskArray {
    /// Builds an array of `n` drives, each constructed by `make_model`
    /// from its index (so per-drive fault wrappers can be applied), all
    /// using `discipline` for head scheduling.
    pub fn new(
        n: usize,
        discipline: Discipline,
        mut make_model: impl FnMut(usize) -> Box<dyn DiskModel>,
    ) -> DiskArray {
        assert!(n > 0, "an array needs at least one disk");
        DiskArray {
            disks: (0..n)
                .map(|i| Disk::new(make_model(i), discipline))
                .collect(),
            layout: Layout::striped(n),
        }
    }

    /// Number of drives.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// False for every constructible array (the constructor rejects zero
    /// drives); delegated to the drive list rather than hardcoded so the
    /// answer can never drift from [`DiskArray::len`].
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// The striping layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The drive holding `block`.
    pub fn disk_of(&self, block: BlockId) -> DiskId {
        self.layout.disk_of(block)
    }

    /// Whether the given drive is free (idle with an empty queue).
    pub fn is_free(&self, disk: DiskId) -> bool {
        self.disks[disk.index()].is_free()
    }

    /// Queue length plus in-service count for the given drive.
    pub fn load(&self, disk: DiskId) -> usize {
        self.disks[disk.index()].load()
    }

    /// Drives that are currently free, in index order. Borrows rather
    /// than allocating: policies call this at every decision point.
    pub fn free_disks(&self) -> impl Iterator<Item = DiskId> + '_ {
        self.disks
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_free())
            .map(|(i, _)| DiskId(i))
    }

    /// Enqueues a fetch of `block` on its drive at time `now`. Rejected
    /// (with no state change) when that drive is inside an outage window.
    pub fn enqueue(&mut self, now: Nanos, block: BlockId) -> EnqueueOutcome {
        self.enqueue_observed(now, block, |_, _| {})
    }

    /// [`DiskArray::enqueue`], reporting each [`DiskEvent`] (tagged with
    /// the drive it happened on) to `observe`.
    pub fn enqueue_observed(
        &mut self,
        now: Nanos,
        block: BlockId,
        mut observe: impl FnMut(DiskId, DiskEvent),
    ) -> EnqueueOutcome {
        let disk = self.disk_of(block);
        let span = self.layout.span_of(block);
        self.disks[disk.index()].enqueue_observed(now, block, span, |e| observe(disk, e))
    }

    /// Enqueues a write-behind flush of `block` on its drive.
    pub fn enqueue_write(&mut self, now: Nanos, block: BlockId) -> EnqueueOutcome {
        self.enqueue_write_observed(now, block, |_, _| {})
    }

    /// [`DiskArray::enqueue_write`], reporting each [`DiskEvent`] to
    /// `observe`.
    pub fn enqueue_write_observed(
        &mut self,
        now: Nanos,
        block: BlockId,
        mut observe: impl FnMut(DiskId, DiskEvent),
    ) -> EnqueueOutcome {
        let disk = self.disk_of(block);
        let span = self.layout.span_of(block);
        self.disks[disk.index()].enqueue_write_observed(now, block, span, |e| observe(disk, e))
    }

    /// The earliest pending completion across all drives.
    pub fn next_event(&self) -> Option<(Nanos, DiskId)> {
        self.disks
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.next_completion().map(|t| (t, DiskId(i))))
            .min()
    }

    /// Completes the in-service request on `disk` (which must complete at
    /// exactly `now`); returns the finished fetch.
    pub fn complete(&mut self, now: Nanos, disk: DiskId) -> Completed {
        self.complete_observed(now, disk, |_, _| {})
    }

    /// [`DiskArray::complete`], reporting each [`DiskEvent`] to `observe`.
    pub fn complete_observed(
        &mut self,
        now: Nanos,
        disk: DiskId,
        mut observe: impl FnMut(DiskId, DiskEvent),
    ) -> Completed {
        self.disks[disk.index()].complete_observed(now, |e| observe(disk, e))
    }

    /// Current head position (cylinder) of the given drive.
    pub fn head_cylinder(&self, disk: DiskId) -> u64 {
        self.disks[disk.index()].head_cylinder()
    }

    /// Per-drive statistics over completed requests only (see
    /// [`Disk::stats`]).
    pub fn stats(&self) -> Vec<DiskStats> {
        self.disks.iter().map(|d| d.stats()).collect()
    }

    /// Per-drive statistics as of `now`, including partial in-service
    /// busy time (see [`Disk::stats_at`]).
    pub fn stats_at(&self, now: Nanos) -> Vec<DiskStats> {
        self.disks.iter().map(|d| d.stats_at(now)).collect()
    }

    /// Total fetches served across all drives.
    pub fn total_served(&self) -> u64 {
        self.disks.iter().map(|d| d.stats().served).sum()
    }

    /// Mean service (fetch) time across all drives, rounded to the
    /// nearest nanosecond (truncating toward zero silently dropped the
    /// sub-nanosecond remainder).
    pub fn avg_fetch_time(&self) -> Nanos {
        let total: Nanos = self.disks.iter().map(|d| d.stats().total_service).sum();
        total.div_rounded(self.total_served())
    }

    /// Mean per-disk utilization over `elapsed`: busy time / elapsed,
    /// averaged across drives (the paper's Tables 4 and 8 metric).
    ///
    /// Requests still in service at `elapsed` are credited with the time
    /// they have spent on the platter so far; counting only completions
    /// undercounts short traces.
    pub fn avg_utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == Nanos::ZERO {
            return 0.0;
        }
        let sum: f64 = self
            .disks
            .iter()
            .map(|d| d.stats_at(elapsed).busy.as_nanos() as f64 / elapsed.as_nanos() as f64)
            .sum();
        sum / self.disks.len() as f64
    }

    /// The block the given drive is servicing right now, if any (see
    /// [`Disk::in_service_block`]).
    pub fn in_service_block(&self, disk: DiskId) -> Option<BlockId> {
        self.disks[disk.index()].in_service_block()
    }

    /// True when `block`'s drive is servicing a *read* of `block` right
    /// now — as opposed to the fetch sitting in the queue behind other
    /// work. Used for stall provenance: a wait on an in-service fetch is
    /// a late prefetch, a wait on a queued fetch is disk congestion.
    pub fn in_service(&self, block: BlockId) -> bool {
        self.disks[self.disk_of(block).index()].in_service_read() == Some(block)
    }

    /// Blocks outstanding (queued or in service) on any drive.
    pub fn outstanding(&self) -> Vec<BlockId> {
        self.disks.iter().flat_map(|d| d.outstanding()).collect()
    }

    /// Resets all drives (queues, stats, and model state).
    pub fn reset(&mut self) {
        for d in &mut self.disks {
            d.reset();
        }
    }
}

impl std::fmt::Debug for DiskArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskArray")
            .field("disks", &self.disks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDisk;

    /// Unwraps an [`EnqueueOutcome`] that must be `Accepted` (healthy
    /// drives unless a test says otherwise).
    trait MustAccept {
        fn accepted(self);
    }
    impl MustAccept for EnqueueOutcome {
        fn accepted(self) {
            assert_eq!(self, EnqueueOutcome::Accepted);
        }
    }

    fn uniform_array(n: usize, ms: u64) -> DiskArray {
        DiskArray::new(n, Discipline::Fcfs, move |_| {
            Box::new(UniformDisk::new(Nanos::from_millis(ms)))
        })
    }

    #[test]
    fn parallel_fetches_on_different_disks() {
        let mut a = uniform_array(2, 10);
        // Blocks 0 and 1 stripe to different disks: both complete at t=10ms.
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        a.enqueue(Nanos::ZERO, BlockId(1)).accepted();
        let (t1, d1) = a.next_event().unwrap();
        assert_eq!(t1, Nanos::from_millis(10));
        a.complete(t1, d1);
        let (t2, d2) = a.next_event().unwrap();
        assert_eq!(t2, Nanos::from_millis(10));
        assert_ne!(d1, d2);
    }

    #[test]
    fn same_disk_serializes() {
        let mut a = uniform_array(2, 10);
        // Blocks 0 and 2 both live on disk 0.
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        a.enqueue(Nanos::ZERO, BlockId(2)).accepted();
        let (t1, d1) = a.complete_next();
        assert_eq!((t1, d1.index()), (Nanos::from_millis(10), 0));
        let (t2, _) = a.complete_next();
        assert_eq!(t2, Nanos::from_millis(20));
    }

    impl DiskArray {
        /// Test helper: pop the next completion.
        fn complete_next(&mut self) -> (Nanos, DiskId) {
            let (t, d) = self.next_event().unwrap();
            self.complete(t, d);
            (t, d)
        }
    }

    #[test]
    fn free_disks_reflect_state() {
        let mut a = uniform_array(3, 10);
        assert_eq!(a.free_disks().count(), 3);
        a.enqueue(Nanos::ZERO, BlockId(1)).accepted();
        let free: Vec<DiskId> = a.free_disks().collect();
        assert_eq!(free, vec![DiskId(0), DiskId(2)]);
        assert!(!a.is_free(DiskId(1)));
        assert_eq!(a.load(DiskId(1)), 1);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn utilization_and_fetch_time() {
        let mut a = uniform_array(2, 10);
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        let (t, d) = a.next_event().unwrap();
        a.complete(t, d);
        // One disk busy 10ms of a 20ms run, the other idle: 25% average.
        let u = a.avg_utilization(Nanos::from_millis(20));
        assert!((u - 0.25).abs() < 1e-9);
        assert_eq!(a.avg_fetch_time(), Nanos::from_millis(10));
        assert_eq!(a.total_served(), 1);
    }

    #[test]
    fn utilization_counts_requests_still_in_service() {
        let mut a = uniform_array(2, 10);
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        // The run "ends" at 5ms with the request half-served: the drive
        // has been busy the whole time, so utilization is 0.5 / 2 disks.
        let u = a.avg_utilization(Nanos::from_millis(5));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
        // A second request queued behind it contributes nothing yet.
        a.enqueue(Nanos::ZERO, BlockId(2)).accepted();
        let u = a.avg_utilization(Nanos::from_millis(5));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
        assert_eq!(
            a.stats_at(Nanos::from_millis(5))[0].busy,
            Nanos::from_millis(5)
        );
        assert_eq!(a.stats()[0].busy, Nanos::ZERO);
    }

    #[test]
    fn avg_fetch_time_rounds_instead_of_truncating() {
        // Drive 0 serves in 2ns, drive 1 in 1ns: one fetch on each totals
        // 3ns over 2 requests. Truncation loses the remainder (1ns); the
        // rounded mean is 2ns.
        let times = [Nanos(2), Nanos(1)];
        let mut a = DiskArray::new(2, Discipline::Fcfs, |i| {
            Box::new(UniformDisk::new(times[i]))
        });
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted(); // disk 0
        a.enqueue(Nanos::ZERO, BlockId(1)).accepted(); // disk 1
        while let Some((t, d)) = a.next_event() {
            a.complete(t, d);
        }
        assert_eq!(a.total_served(), 2);
        assert_eq!(a.avg_fetch_time(), Nanos(2));
        // No requests served: the mean is zero, not a division panic.
        let empty = uniform_array(1, 10);
        assert_eq!(empty.avg_fetch_time(), Nanos::ZERO);
    }

    #[test]
    fn outstanding_lists_queued_blocks() {
        let mut a = uniform_array(2, 10);
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        a.enqueue(Nanos::ZERO, BlockId(2)).accepted();
        let out = a.outstanding();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&BlockId(0)) && out.contains(&BlockId(2)));
    }

    #[test]
    fn in_service_distinguishes_platter_from_queue() {
        let mut a = uniform_array(2, 10);
        assert_eq!(a.in_service_block(DiskId(0)), None);
        assert!(!a.in_service(BlockId(0)));
        // Blocks 0 and 2 both stripe to disk 0: the first is taken onto
        // the platter immediately, the second waits in the queue.
        a.enqueue(Nanos::ZERO, BlockId(0)).accepted();
        a.enqueue(Nanos::ZERO, BlockId(2)).accepted();
        assert_eq!(a.in_service_block(DiskId(0)), Some(BlockId(0)));
        assert!(a.in_service(BlockId(0)));
        assert!(!a.in_service(BlockId(2)), "queued, not in service");
        let (t, d) = a.next_event().unwrap();
        a.complete(t, d);
        assert!(a.in_service(BlockId(2)), "head moved on to the queue");
    }

    #[test]
    fn reset_clears_fault_state_on_every_wrapped_drive() {
        use crate::fault::{FaultPlan, FaultyDisk};
        // Disk 0 flaky, disk 1 healthy: only the matching drive is
        // wrapped, exactly as the engine builds faulted arrays.
        let plan = FaultPlan::parse("flaky:0:0.5,seed:3").unwrap();
        let make = |i: usize| -> Box<dyn DiskModel> {
            let base = Box::new(UniformDisk::new(Nanos::from_millis(2)));
            match plan.for_disk(i) {
                Some(f) => Box::new(FaultyDisk::new(base, f, plan.rng_for_disk(i))),
                None => base,
            }
        };
        let run = |a: &mut DiskArray| -> Vec<DiskStats> {
            for round in 0..16u64 {
                // Blocks 0 and 1 stripe to disks 0 and 1.
                a.enqueue(Nanos::from_millis(round * 10), BlockId(0))
                    .accepted();
                a.enqueue(Nanos::from_millis(round * 10), BlockId(1))
                    .accepted();
                while let Some((t, d)) = a.next_event() {
                    a.complete(t, d);
                }
            }
            a.stats()
        };
        let mut a = DiskArray::new(2, Discipline::Fcfs, make);
        let first = run(&mut a);
        assert!(first[0].failed > 0, "seed 3 must hit at least one error");
        assert_eq!(first[1].failed, 0, "healthy drive must never fail");
        // Reset must clear failure counters AND rewind the per-drive fault
        // RNG: the rerun replays identically, with no leaked state.
        a.reset();
        for s in a.stats() {
            assert_eq!(s, DiskStats::default());
        }
        let second = run(&mut a);
        assert_eq!(first, second);
    }
}
