//! Deterministic disk fault injection.
//!
//! A [`FaultPlan`] declares, per drive, three kinds of misbehavior:
//!
//! * **transient media errors** — each service attempt fails with a fixed
//!   probability; the time is spent (the platter rotated, the head moved)
//!   but the data never arrives and the caller must retry;
//! * **fail-slow windows** — service times started inside the window are
//!   inflated by a factor (a drive doing internal retries or thermal
//!   throttling);
//! * **hard outages** — during the window the drive rejects new requests
//!   outright, and anything already queued waits for the window to end.
//!
//! Faults are drawn from the workspace's own xoshiro generator
//! ([`parcache_types::rng::Rng`]), seeded per drive from the plan's seed,
//! so every faulted run is a pure function of `(trace, config, seed)` —
//! reproducible, diffable, and safe to fuzz. An empty plan wraps nothing
//! and changes nothing: drives without a matching spec are built bare, so
//! fault-free runs stay byte-identical to a build without this module.

use crate::geometry::SectorSpan;
use crate::model::{Attempt, DiskModel, ServiceOutcome};
use parcache_types::rng::Rng;
use parcache_types::Nanos;

/// Which drives a [`FaultSpec`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskSel {
    /// Every drive in the array.
    All,
    /// One drive, by index.
    One(usize),
}

impl DiskSel {
    /// True when the selector covers drive `disk`.
    pub fn matches(&self, disk: usize) -> bool {
        match self {
            DiskSel::All => true,
            DiskSel::One(d) => *d == disk,
        }
    }
}

/// One fault mode. Times are simulation time (run start = 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Each service attempt fails with probability `probability`
    /// (independent draws; must be `< 1` so retries terminate).
    Transient {
        /// Per-attempt failure probability in `[0, 1)`.
        probability: f64,
    },
    /// Service started in `[from, until)` takes `factor` times as long.
    FailSlow {
        /// Window start (inclusive).
        from: Nanos,
        /// Window end (exclusive).
        until: Nanos,
        /// Service-time multiplier, `>= 1`.
        factor: f64,
    },
    /// During `[from, until)` the drive rejects new requests; queued
    /// requests wait and start at `until`.
    Outage {
        /// Window start (inclusive).
        from: Nanos,
        /// Window end (exclusive).
        until: Nanos,
    },
}

impl FaultKind {
    /// The degraded window this fault contributes, if it is windowed.
    fn window(&self) -> Option<(Nanos, Nanos)> {
        match *self {
            FaultKind::Transient { .. } => None,
            FaultKind::FailSlow { from, until, .. } | FaultKind::Outage { from, until } => {
                Some((from, until))
            }
        }
    }

    /// Validates the parameters, returning a description of the problem.
    fn validate(&self) -> Result<(), String> {
        match *self {
            FaultKind::Transient { probability } => {
                if !(0.0..1.0).contains(&probability) {
                    return Err(format!(
                        "transient probability must be in [0, 1), got {probability}"
                    ));
                }
            }
            FaultKind::FailSlow {
                from,
                until,
                factor,
            } => {
                if from >= until {
                    return Err(format!("fail-slow window is empty: {from} >= {until}"));
                }
                if factor < 1.0 || !factor.is_finite() {
                    return Err(format!("fail-slow factor must be >= 1, got {factor}"));
                }
            }
            FaultKind::Outage { from, until } => {
                if from >= until {
                    return Err(format!("outage window is empty: {from} >= {until}"));
                }
            }
        }
        Ok(())
    }
}

/// One declared fault: which drives, and what goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The drives this spec applies to.
    pub disk: DiskSel,
    /// The fault mode.
    pub kind: FaultKind,
}

/// A declarative, seed-deterministic fault schedule for a whole array.
///
/// The default plan is empty: no drive is wrapped and behavior is
/// identical to a fault-free build.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-drive fault RNG streams.
    pub seed: u64,
    /// The declared faults.
    pub specs: Vec<FaultSpec>,
}

/// A malformed `--faults` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(pub String);

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

fn parse_sel(s: &str) -> Result<DiskSel, FaultParseError> {
    if s == "*" {
        return Ok(DiskSel::All);
    }
    s.parse::<usize>()
        .map(DiskSel::One)
        .map_err(|_| FaultParseError(format!("disk selector must be an index or '*', got {s:?}")))
}

fn parse_ms(s: &str) -> Result<Nanos, FaultParseError> {
    s.parse::<u64>()
        .map(Nanos::from_millis)
        .map_err(|_| FaultParseError(format!("expected a time in whole milliseconds, got {s:?}")))
}

impl FaultPlan {
    /// An empty plan with the given RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// True when no faults are declared (the drive array is built bare).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Parses the `--faults` grammar: comma-separated clauses
    ///
    /// * `flaky:<disk|*>:<probability>` — transient media errors,
    /// * `slow:<disk|*>:<from_ms>:<until_ms>:<factor>` — fail-slow window,
    /// * `outage:<disk|*>:<from_ms>:<until_ms>` — hard outage window,
    /// * `seed:<u64>` — the fault RNG seed (defaults to 0).
    ///
    /// Example: `flaky:*:0.01,slow:0:2000:5000:4,outage:1:1000:2000,seed:7`.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::default();
        for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
            let parts: Vec<&str> = clause.trim().split(':').collect();
            let kind = match (parts[0], parts.len()) {
                ("seed", 2) => {
                    plan.seed = parts[1].parse::<u64>().map_err(|_| {
                        FaultParseError(format!("seed must be a u64, got {:?}", parts[1]))
                    })?;
                    continue;
                }
                ("flaky", 3) => FaultKind::Transient {
                    probability: parts[2].parse::<f64>().map_err(|_| {
                        FaultParseError(format!("probability must be a float, got {:?}", parts[2]))
                    })?,
                },
                ("slow", 5) => FaultKind::FailSlow {
                    from: parse_ms(parts[2])?,
                    until: parse_ms(parts[3])?,
                    factor: parts[4].parse::<f64>().map_err(|_| {
                        FaultParseError(format!("factor must be a float, got {:?}", parts[4]))
                    })?,
                },
                ("outage", 4) => FaultKind::Outage {
                    from: parse_ms(parts[2])?,
                    until: parse_ms(parts[3])?,
                },
                _ => {
                    return Err(FaultParseError(format!(
                        "unrecognized clause {clause:?} (expected flaky:<disk>:<p>, \
                         slow:<disk>:<from_ms>:<until_ms>:<factor>, \
                         outage:<disk>:<from_ms>:<until_ms>, or seed:<u64>)"
                    )))
                }
            };
            kind.validate().map_err(FaultParseError)?;
            plan.specs.push(FaultSpec {
                disk: parse_sel(parts[1])?,
                kind,
            });
        }
        Ok(plan)
    }

    /// Validates every spec (useful for programmatically built plans).
    pub fn validate(&self) -> Result<(), String> {
        for spec in &self.specs {
            spec.kind.validate()?;
        }
        Ok(())
    }

    /// The resolved fault configuration for drive `disk`, or `None` when
    /// no spec matches it (the drive is built bare, not wrapped).
    pub fn for_disk(&self, disk: usize) -> Option<DiskFaults> {
        let specs: Vec<&FaultSpec> = self.specs.iter().filter(|s| s.disk.matches(disk)).collect();
        if specs.is_empty() {
            return None;
        }
        // Independent transient sources compose: the attempt survives only
        // if every source passes, so p = 1 - prod(1 - p_i).
        let mut survive = 1.0f64;
        let mut slow: Vec<(Nanos, Nanos, f64)> = Vec::new();
        let mut outages: Vec<(Nanos, Nanos)> = Vec::new();
        for spec in specs {
            match spec.kind {
                FaultKind::Transient { probability } => survive *= 1.0 - probability,
                FaultKind::FailSlow {
                    from,
                    until,
                    factor,
                } => slow.push((from, until, factor)),
                FaultKind::Outage { from, until } => outages.push((from, until)),
            }
        }
        slow.sort_by_key(|&(from, until, _)| (from, until));
        Some(DiskFaults {
            transient: 1.0 - survive,
            slow,
            outages: merge_windows(outages),
        })
    }

    /// The merged union of all degraded windows (fail-slow or outage) for
    /// drive `disk`, sorted and non-overlapping.
    pub fn degraded_windows(&self, disk: usize) -> Vec<(Nanos, Nanos)> {
        merge_windows(
            self.specs
                .iter()
                .filter(|s| s.disk.matches(disk))
                .filter_map(|s| s.kind.window())
                .collect(),
        )
    }

    /// Total time drive `disk` spends degraded within `[0, elapsed)`.
    pub fn degraded_nanos(&self, disk: usize, elapsed: Nanos) -> Nanos {
        self.degraded_windows(disk)
            .iter()
            .map(|&(from, until)| until.min(elapsed) - from.min(elapsed))
            .fold(Nanos::ZERO, |a, b| a + b)
    }

    /// The fault RNG seed for drive `disk`: the plan seed diversified by
    /// index so drives draw independent streams.
    pub fn rng_for_disk(&self, disk: usize) -> Rng {
        Rng::seed_from_u64(self.seed ^ (disk as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Merges possibly-overlapping windows into a sorted disjoint union.
/// Adjacent windows (`[a,b)`, `[b,c)`) coalesce, so no drive ever sees a
/// recover-then-degrade pair at the same instant.
fn merge_windows(mut windows: Vec<(Nanos, Nanos)>) -> Vec<(Nanos, Nanos)> {
    windows.sort();
    let mut merged: Vec<(Nanos, Nanos)> = Vec::with_capacity(windows.len());
    for (from, until) in windows {
        match merged.last_mut() {
            Some((_, end)) if from <= *end => *end = (*end).max(until),
            _ => merged.push((from, until)),
        }
    }
    merged
}

/// The resolved fault configuration for one drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFaults {
    /// Combined per-attempt media-error probability, `[0, 1)`.
    pub transient: f64,
    /// Fail-slow windows `(from, until, factor)`, sorted by start.
    pub slow: Vec<(Nanos, Nanos, f64)>,
    /// Outage windows, sorted, merged, non-overlapping.
    pub outages: Vec<(Nanos, Nanos)>,
}

impl DiskFaults {
    /// Product of the factors of every fail-slow window containing `now`
    /// (overlapping slowdowns compound), or 1.0 outside all windows.
    fn slow_factor(&self, now: Nanos) -> f64 {
        self.slow
            .iter()
            .filter(|&&(from, until, _)| from <= now && now < until)
            .map(|&(_, _, f)| f)
            .product()
    }
}

/// A [`DiskModel`] wrapper that injects the faults a [`DiskFaults`]
/// declares while delegating geometry and timing to the wrapped model.
///
/// The wrapper is only constructed for drives with a matching spec; an
/// empty plan leaves the array exactly as a fault-free build would.
pub struct FaultyDisk {
    inner: Box<dyn DiskModel>,
    faults: DiskFaults,
    rng: Rng,
    initial_rng: Rng,
}

impl FaultyDisk {
    /// Wraps `inner` with the resolved fault configuration, drawing media
    /// errors from `rng` (clone it from [`FaultPlan::rng_for_disk`]).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (`transient >= 1`, a factor `< 1`, or
    /// an inverted window): such a plan could make retries diverge.
    pub fn new(inner: Box<dyn DiskModel>, faults: DiskFaults, rng: Rng) -> FaultyDisk {
        assert!(
            (0.0..1.0).contains(&faults.transient),
            "transient probability must be in [0, 1)"
        );
        for &(from, until, factor) in &faults.slow {
            assert!(from < until && factor >= 1.0, "bad fail-slow window");
        }
        for &(from, until) in &faults.outages {
            assert!(from < until, "bad outage window");
        }
        FaultyDisk {
            inner,
            faults,
            initial_rng: rng.clone(),
            rng,
        }
    }
}

impl DiskModel for FaultyDisk {
    fn service(&mut self, now: Nanos, span: &SectorSpan) -> Nanos {
        self.service_attempt(now, span).completes
    }

    fn service_attempt(&mut self, now: Nanos, span: &SectorSpan) -> Attempt {
        let inner_done = self.inner.service(now, span);
        let factor = self.faults.slow_factor(now);
        let completes = if factor > 1.0 {
            let stretched = ((inner_done - now).as_nanos() as f64 * factor).round() as u64;
            now + Nanos(stretched)
        } else {
            inner_done
        };
        // Draw only when the mode is active: a plan with no transient
        // clause must not consume RNG state, so adding a fail-slow window
        // to a plan never perturbs another drive's error sequence.
        let outcome = if self.faults.transient > 0.0 && self.rng.gen_bool(self.faults.transient) {
            ServiceOutcome::MediaError
        } else {
            ServiceOutcome::Ok
        };
        Attempt { completes, outcome }
    }

    fn outage_until(&self, now: Nanos) -> Option<Nanos> {
        self.faults
            .outages
            .iter()
            .find(|&&(from, until)| from <= now && now < until)
            .map(|&(_, until)| until)
    }

    fn cylinder_of(&self, sector: u64) -> u64 {
        self.inner.cylinder_of(sector)
    }

    fn head_cylinder(&self) -> u64 {
        self.inner.head_cylinder()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.rng = self.initial_rng.clone();
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformDisk;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("flaky:*:0.01,slow:0:2000:5000:4,outage:1:1000:2000,seed:7").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(
            plan.specs[0],
            FaultSpec {
                disk: DiskSel::All,
                kind: FaultKind::Transient { probability: 0.01 },
            }
        );
        assert_eq!(
            plan.specs[1],
            FaultSpec {
                disk: DiskSel::One(0),
                kind: FaultKind::FailSlow {
                    from: ms(2000),
                    until: ms(5000),
                    factor: 4.0,
                },
            }
        );
        assert_eq!(
            plan.specs[2],
            FaultSpec {
                disk: DiskSel::One(1),
                kind: FaultKind::Outage {
                    from: ms(1000),
                    until: ms(2000),
                },
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "flaky:*:1.0",    // p must stay below 1 or retries diverge
            "flaky:*:-0.1",   // negative probability
            "flaky:*:x",      // non-numeric
            "slow:0:5:2:4",   // inverted window (5ms >= 2ms)
            "slow:0:1:2:0.5", // factor < 1 would *speed up* the drive
            "outage:1:9:9",   // empty window
            "outage:q:1:2",   // bad selector
            "seed:banana",    // bad seed
            "gremlin:0:1",    // unknown clause
            "flaky:*",        // wrong arity
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
        // The empty string is the empty plan, not an error.
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn for_disk_resolves_selectors_and_composes_transients() {
        let plan = FaultPlan::parse("flaky:*:0.5,flaky:0:0.5,outage:1:1:2").unwrap();
        let d0 = plan.for_disk(0).unwrap();
        // Two independent p=0.5 sources: combined 1 - 0.25 = 0.75.
        assert!((d0.transient - 0.75).abs() < 1e-12);
        assert!(d0.outages.is_empty());
        let d1 = plan.for_disk(1).unwrap();
        assert!((d1.transient - 0.5).abs() < 1e-12);
        assert_eq!(d1.outages, vec![(ms(1), ms(2))]);
        // An unmentioned drive resolves to nothing at all.
        let quiet = FaultPlan::parse("outage:1:1:2").unwrap();
        assert!(quiet.for_disk(0).is_none());
    }

    #[test]
    fn degraded_windows_merge_and_clip() {
        let plan = FaultPlan::parse("slow:0:1:3:2,outage:0:2:5,outage:0:8:9").unwrap();
        assert_eq!(
            plan.degraded_windows(0),
            vec![(ms(1), ms(5)), (ms(8), ms(9))]
        );
        assert_eq!(plan.degraded_nanos(0, ms(100)), ms(5));
        // Clipped at elapsed: only [1,4) of the first window counts.
        assert_eq!(plan.degraded_nanos(0, ms(4)), ms(3));
        // Before any window: nothing.
        assert_eq!(plan.degraded_nanos(0, ms(1)), Nanos::ZERO);
    }

    #[test]
    fn fail_slow_inflates_only_inside_the_window() {
        let plan = FaultPlan::parse("slow:0:10:20:3").unwrap();
        let mut d = FaultyDisk::new(
            Box::new(UniformDisk::new(ms(5))),
            plan.for_disk(0).unwrap(),
            plan.rng_for_disk(0),
        );
        let span = SectorSpan { start: 0, len: 16 };
        // Outside the window: the base 5ms.
        assert_eq!(d.service(ms(0), &span), ms(5));
        // Started inside [10, 20): 5ms * 3 = 15ms.
        let a = d.service_attempt(ms(10), &span);
        assert_eq!(a.completes, ms(25));
        assert_eq!(a.outcome, ServiceOutcome::Ok);
        // Started after the window: back to normal.
        assert_eq!(d.service(ms(20), &span), ms(25));
    }

    #[test]
    fn transient_errors_are_seed_deterministic() {
        let plan = FaultPlan::parse("flaky:0:0.5,seed:42").unwrap();
        let make = || {
            FaultyDisk::new(
                Box::new(UniformDisk::new(ms(1))),
                plan.for_disk(0).unwrap(),
                plan.rng_for_disk(0),
            )
        };
        let span = SectorSpan { start: 0, len: 16 };
        let draw = |d: &mut FaultyDisk| -> Vec<ServiceOutcome> {
            (0..64)
                .map(|i| d.service_attempt(ms(i), &span).outcome)
                .collect()
        };
        let (mut a, mut b) = (make(), make());
        let (sa, sb) = (draw(&mut a), draw(&mut b));
        assert_eq!(sa, sb);
        assert!(sa.contains(&ServiceOutcome::MediaError));
        assert!(sa.contains(&ServiceOutcome::Ok));
        // And reset replays the identical error sequence.
        a.reset();
        assert_eq!(draw(&mut a), sa);
    }

    #[test]
    fn outage_until_reports_the_containing_window() {
        let plan = FaultPlan::parse("outage:0:10:20").unwrap();
        let d = FaultyDisk::new(
            Box::new(UniformDisk::new(ms(1))),
            plan.for_disk(0).unwrap(),
            plan.rng_for_disk(0),
        );
        assert_eq!(d.outage_until(ms(9)), None);
        assert_eq!(d.outage_until(ms(10)), Some(ms(20)));
        assert_eq!(d.outage_until(ms(19)), Some(ms(20)));
        assert_eq!(d.outage_until(ms(20)), None);
    }

    #[test]
    fn per_disk_rng_streams_differ() {
        let plan = FaultPlan::new(9);
        assert_ne!(plan.rng_for_disk(0), plan.rng_for_disk(1));
        assert_eq!(plan.rng_for_disk(3), plan.rng_for_disk(3));
    }
}
