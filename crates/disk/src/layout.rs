//! Data placement across the array.
//!
//! The paper stripes data across the array with a one-block stripe unit
//! (§3.2): logical block `b` lives on disk `b mod d` at disk-block
//! `b div d`. File-clustering (placing each file at a random start within a
//! 100-cylinder, 8550-block group) happens at trace-generation time in
//! `parcache-trace`; by the time blocks reach this crate they are plain
//! logical block numbers.

use crate::geometry::SectorSpan;
use parcache_types::{BlockId, DiskId};

/// One-block striping of a logical block space across `disks` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    disks: usize,
}

impl Layout {
    /// Creates a striping layout over `disks` drives.
    ///
    /// # Panics
    ///
    /// Panics if `disks == 0`.
    pub fn striped(disks: usize) -> Layout {
        assert!(disks > 0, "an array needs at least one disk");
        Layout { disks }
    }

    /// Number of drives.
    pub fn disks(&self) -> usize {
        self.disks
    }

    /// The drive holding logical block `block`.
    pub fn disk_of(&self, block: BlockId) -> DiskId {
        DiskId((block.raw() % self.disks as u64) as usize)
    }

    /// The block index *within its drive* for logical block `block`.
    pub fn disk_block_of(&self, block: BlockId) -> u64 {
        block.raw() / self.disks as u64
    }

    /// The physical sector span of logical block `block` on its drive.
    pub fn span_of(&self, block: BlockId) -> SectorSpan {
        SectorSpan::for_block(self.disk_block_of(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_striping() {
        let l = Layout::striped(3);
        assert_eq!(l.disk_of(BlockId(0)), DiskId(0));
        assert_eq!(l.disk_of(BlockId(1)), DiskId(1));
        assert_eq!(l.disk_of(BlockId(2)), DiskId(2));
        assert_eq!(l.disk_of(BlockId(3)), DiskId(0));
        assert_eq!(l.disk_block_of(BlockId(3)), 1);
        assert_eq!(l.disk_block_of(BlockId(7)), 2);
    }

    #[test]
    fn single_disk_is_identity() {
        let l = Layout::striped(1);
        assert_eq!(l.disk_of(BlockId(41)), DiskId(0));
        assert_eq!(l.disk_block_of(BlockId(41)), 41);
        assert_eq!(l.span_of(BlockId(2)).start, 32);
    }

    #[test]
    fn consecutive_blocks_are_consecutive_on_disk() {
        // With d-way striping, blocks b and b+d are adjacent on one drive —
        // this is what keeps per-disk access sequential for sequential
        // workloads, a property the paper's results depend on.
        let l = Layout::striped(4);
        let a = l.span_of(BlockId(5));
        let b = l.span_of(BlockId(9));
        assert_eq!(l.disk_of(BlockId(5)), l.disk_of(BlockId(9)));
        assert_eq!(b.start, a.end());
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        Layout::striped(0);
    }
}
