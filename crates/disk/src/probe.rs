//! Low-level drive events for observers.
//!
//! The drive layer cannot depend on the simulator core, so it exposes its
//! own small event vocabulary. The core's probe layer wraps these into its
//! richer simulation-event stream. Observers are plain `FnMut` closures
//! passed into the `*_observed` variants of [`crate::Disk`] and
//! [`crate::DiskArray`]; the plain methods pass a no-op closure, which
//! monomorphizes away entirely, so uninstrumented callers pay nothing.

use crate::disk::ReqKind;
use crate::model::ServiceOutcome;
use parcache_types::{BlockId, Nanos};

/// Something that happened inside one drive.
///
/// Queue depth is reported *after* the event took effect, and the head
/// cylinder is sampled from the drive model at emission time, so a stream
/// of these events reconstructs the queue-length and head-position
/// trajectories exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskEvent {
    /// A request entered the drive's queue.
    Enqueued {
        /// The logical block requested.
        block: BlockId,
        /// Read or write.
        kind: ReqKind,
        /// Queue length plus in-service count after this arrival.
        depth: usize,
    },
    /// The drive picked a request and began servicing it.
    ServiceStarted {
        /// The logical block being serviced.
        block: BlockId,
        /// Read or write.
        kind: ReqKind,
        /// Head position (cylinder) after the seek for this request.
        head_cylinder: u64,
        /// Time the service will complete.
        completes: Nanos,
    },
    /// The drive finished servicing a request.
    ServiceCompleted {
        /// The logical block serviced.
        block: BlockId,
        /// Read or write.
        kind: ReqKind,
        /// Pure service time (completion minus service start).
        service: Nanos,
        /// Response time (completion minus enqueue).
        response: Nanos,
        /// Head position (cylinder) where the request left the head.
        head_cylinder: u64,
        /// Queue length plus in-service count after the completion (the
        /// next request, if any, has already been started).
        depth: usize,
        /// Whether the attempt delivered its data (always
        /// [`ServiceOutcome::Ok`] on a healthy drive).
        outcome: ServiceOutcome,
    },
}
