//! Property-style tests of the disk substrate: geometry, seek curve,
//! drive models, schedulers, and the array, over seeded random inputs
//! from the workspace's own deterministic [`Rng`].

use parcache_disk::disk::ReqKind;
use parcache_disk::geometry::{DiskGeometry, SectorSpan};
use parcache_disk::model::DiskModel;
use parcache_disk::sched::Discipline;
use parcache_disk::seek::SeekCurve;
use parcache_disk::{Disk, DiskArray, Hp97560, Layout, UniformDisk};
use parcache_types::rng::Rng;
use parcache_types::{BlockId, Nanos};

const CASES: u64 = 128;

/// A block that fits the smallest drive (HP 97560).
fn arb_block(rng: &mut Rng) -> u64 {
    rng.gen_range(0u64..167_000)
}

fn arb_blocks(rng: &mut Rng, max: usize) -> Vec<u64> {
    let n = rng.gen_range(1usize..max);
    (0..n).map(|_| arb_block(rng)).collect()
}

fn arb_discipline(rng: &mut Rng) -> Discipline {
    *rng.choose(&[
        Discipline::Fcfs,
        Discipline::Cscan,
        Discipline::Scan { ascending: true },
        Discipline::Sstf,
    ])
    .unwrap()
}

/// Geometry decoding is consistent: every sector's (cylinder, track,
/// rotational index) recombine to the sector number.
#[test]
fn geometry_decode_recombines() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..10 * CASES {
        let sector = rng.gen_range(0u64..2_684_016);
        let g = DiskGeometry::HP97560;
        let c = g.cylinder_of(sector);
        let t = g.track_of(sector);
        let r = g.rotational_index(sector);
        assert!(c < g.cylinders);
        assert!(t < g.tracks_per_cylinder);
        assert!(r < g.sectors_per_track);
        let rebuilt = c * g.sectors_per_cylinder() + t * g.sectors_per_track + r;
        assert_eq!(rebuilt, sector);
    }
}

/// The seek curve is monotone and continuous-ish at the breakpoint.
#[test]
fn seek_curve_monotone() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..10 * CASES {
        let a = rng.gen_range(0u64..1962);
        let b = rng.gen_range(0u64..1962);
        let c = SeekCurve::HP97560;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(c.seek_time(lo) <= c.seek_time(hi));
    }
}

/// Service time never travels backwards and is bounded by the drive's
/// physical worst case.
#[test]
fn hp97560_service_is_bounded() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(case);
        let blocks = arb_blocks(&mut rng, 60);
        let mut d = Hp97560::new();
        let mut now = Nanos::ZERO;
        // Physical bound: overhead + full seek + rotation + transfer + switches.
        let bound = Nanos::from_millis(45);
        for b in blocks {
            let done = d.service(now, &SectorSpan::for_block(b));
            assert!(done >= now, "case {case}");
            assert!(
                done - now <= bound,
                "case {case}: service {} too long",
                done - now
            );
            now = done;
        }
    }
}

/// Every enqueued request is eventually served exactly once, under any
/// discipline — schedulers never starve or duplicate.
#[test]
fn disk_serves_every_request_once() {
    for case in 100..100 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let blocks = arb_blocks(&mut rng, 40);
        let discipline = arb_discipline(&mut rng);
        let mut disk = Disk::new(Box::new(Hp97560::new()), discipline);
        for (i, &b) in blocks.iter().enumerate() {
            let outcome = disk.enqueue(
                Nanos::from_micros(i as u64),
                BlockId(b),
                SectorSpan::for_block(b),
            );
            assert!(!outcome.is_rejected(), "case {case}: healthy drive");
        }
        let mut served = Vec::new();
        while let Some(t) = disk.next_completion() {
            served.push(disk.complete(t).block);
        }
        assert!(disk.is_free(), "case {case}");
        served.sort_unstable();
        let mut expected: Vec<BlockId> = blocks.iter().map(|&b| BlockId(b)).collect();
        expected.sort_unstable();
        assert_eq!(served, expected, "case {case}");
        assert_eq!(disk.stats().served, blocks.len() as u64, "case {case}");
    }
}

/// Striping is a bijection between logical blocks and
/// (disk, disk-block) pairs.
#[test]
fn striping_is_bijective() {
    for case in 200..200 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let disks = rng.gen_range(1usize..17);
        let blocks = arb_blocks(&mut rng, 50);
        let l = Layout::striped(disks);
        for &b in &blocks {
            let d = l.disk_of(BlockId(b));
            let db = l.disk_block_of(BlockId(b));
            assert!(d.index() < disks, "case {case}");
            let rebuilt = db * disks as u64 + d.index() as u64;
            assert_eq!(rebuilt, b, "case {case}");
        }
    }
}

/// Array completions happen in non-decreasing time order, every request
/// is served, and per-disk serialization holds (busy time on a disk never
/// exceeds the span of the run).
#[test]
fn array_conserves_requests() {
    for case in 300..300 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let disks = rng.gen_range(1usize..9);
        let blocks = arb_blocks(&mut rng, 60);
        let mut a = DiskArray::new(disks, Discipline::Cscan, |_| Box::new(Hp97560::new()));
        for &b in &blocks {
            assert!(!a.enqueue(Nanos::ZERO, BlockId(b)).is_rejected());
        }
        let mut last = Nanos::ZERO;
        let mut count = 0u64;
        let mut final_t = Nanos::ZERO;
        while let Some((t, d)) = a.next_event() {
            assert!(t >= last, "case {case}");
            last = t;
            let done = a.complete(t, d);
            assert_eq!(done.kind, ReqKind::Read, "case {case}");
            final_t = t;
            count += 1;
        }
        assert_eq!(count, blocks.len() as u64, "case {case}");
        assert_eq!(a.total_served(), blocks.len() as u64, "case {case}");
        for s in a.stats() {
            assert!(
                s.busy <= final_t,
                "case {case}: disk busier than the run is long"
            );
        }
    }
}

/// The uniform model is exactly uniform under queueing: with one disk,
/// the k-th completion lands at exactly k * F.
#[test]
fn uniform_queueing_is_exact() {
    for case in 400..400 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let n = rng.gen_range(1usize..30);
        let f_ms = rng.gen_range(1u64..20);
        let mut d = Disk::new(
            Box::new(UniformDisk::new(Nanos::from_millis(f_ms))),
            Discipline::Fcfs,
        );
        for i in 0..n {
            let outcome = d.enqueue(
                Nanos::ZERO,
                BlockId(i as u64),
                SectorSpan::for_block(i as u64),
            );
            assert!(!outcome.is_rejected(), "case {case}: healthy drive");
        }
        for k in 1..=n {
            let t = d.next_completion().expect("queued work");
            assert_eq!(t, Nanos::from_millis(f_ms * k as u64), "case {case}");
            d.complete(t);
        }
    }
}

/// Under transient faults, every accepted request still completes exactly
/// once (as a success or a media error), attempts conserve, and the busy
/// time stays bounded by the run — the fault layer must not break the
/// drive's conservation properties.
#[test]
fn faulty_drive_conserves_requests() {
    use parcache_disk::fault::{FaultPlan, FaultyDisk};
    for case in 600..600 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let blocks = arb_blocks(&mut rng, 40);
        let discipline = arb_discipline(&mut rng);
        let p = rng.gen_range(0.05..0.5);
        let plan = FaultPlan {
            seed: case,
            specs: vec![parcache_disk::fault::FaultSpec {
                disk: parcache_disk::fault::DiskSel::All,
                kind: parcache_disk::fault::FaultKind::Transient { probability: p },
            }],
        };
        let mut disk = Disk::new(
            Box::new(FaultyDisk::new(
                Box::new(Hp97560::new()),
                plan.for_disk(0).unwrap(),
                plan.rng_for_disk(0),
            )),
            discipline,
        );
        for (i, &b) in blocks.iter().enumerate() {
            let outcome = disk.enqueue(
                Nanos::from_micros(i as u64),
                BlockId(b),
                SectorSpan::for_block(b),
            );
            assert!(!outcome.is_rejected(), "case {case}: no outage declared");
        }
        let mut completions = 0u64;
        let mut last = Nanos::ZERO;
        while let Some(t) = disk.next_completion() {
            assert!(t >= last, "case {case}");
            last = t;
            disk.complete(t);
            completions += 1;
        }
        assert!(disk.is_free(), "case {case}");
        assert_eq!(completions, blocks.len() as u64, "case {case}");
        let s = disk.stats();
        assert_eq!(s.served + s.failed, blocks.len() as u64, "case {case}");
        assert!(s.busy <= last, "case {case}: busier than the run is long");
    }
}

/// CSCAN always picks the nearest queued cylinder at or ahead of the
/// head, wrapping when nothing is ahead.
#[test]
fn cscan_picks_ahead_or_wraps() {
    use parcache_disk::disk::Pending;
    for case in 500..500 + CASES {
        let mut rng = Rng::seed_from_u64(case);
        let n = rng.gen_range(1usize..20);
        let cyls: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1962)).collect();
        let head = rng.gen_range(0u64..1962);
        let queue: Vec<Pending> = cyls
            .iter()
            .enumerate()
            .map(|(i, &c)| Pending {
                block: BlockId(i as u64),
                span: SectorSpan {
                    start: c * 1368,
                    len: 16,
                },
                enqueued: Nanos::ZERO,
                seq: i as u64,
                kind: ReqKind::Read,
            })
            .collect();
        let mut d = Discipline::Cscan;
        let picked = d.select(&queue, &cyls, head).expect("non-empty");
        let picked_cyl = cyls[picked];
        let ahead: Vec<u64> = cyls.iter().copied().filter(|&c| c >= head).collect();
        if ahead.is_empty() {
            assert_eq!(picked_cyl, *cyls.iter().min().unwrap(), "case {case}");
        } else {
            assert_eq!(picked_cyl, *ahead.iter().min().unwrap(), "case {case}");
        }
    }
}
