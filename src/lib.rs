//! `parcache` — trace-driven simulation of integrated parallel prefetching
//! and caching.
//!
//! This is the facade crate: it re-exports the public API of the workspace
//! so applications can depend on a single crate.
//!
//! The library reproduces the system studied in Kimbrel, Tomkins, Patterson,
//! Bershad, Cao, Felten, Gibson, Karlin, and Li, *A Trace-Driven Comparison
//! of Algorithms for Parallel Prefetching and Caching* (OSDI 1996):
//! five integrated prefetching-and-caching policies (demand with optimal
//! replacement, fixed horizon, aggressive, reverse aggressive, forestall)
//! driven against a detailed multi-disk simulator with application traces.
//!
//! # Quickstart
//!
//! ```
//! use parcache::prelude::*;
//!
//! // A workload: the paper's synthetic trace, scaled down.
//! let trace = parcache::trace::synth::synth_trace(5, 200, 42);
//!
//! // Simulate the aggressive policy on a 2-disk array with CSCAN heads.
//! let config = SimConfig::new(2, 512).with_trace_defaults(&trace);
//! let report = simulate(&trace, PolicyKind::Aggressive, &config);
//!
//! // Elapsed time decomposes into compute + driver overhead + stall.
//! assert_eq!(
//!     report.elapsed,
//!     report.compute + report.driver + report.stall
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use parcache_core as core;
pub use parcache_disk as disk;
pub use parcache_trace as trace;
pub use parcache_types as types;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use parcache_core::config::SimConfig;
    pub use parcache_core::engine::{simulate, simulate_probed, Report};
    pub use parcache_core::metrics::{MetricsProbe, RunMetrics};
    pub use parcache_core::policy::PolicyKind;
    pub use parcache_core::probe::{Event, NoopProbe, Probe};
    pub use parcache_disk::sched::Discipline;
    pub use parcache_trace::Trace;
    pub use parcache_types::{BlockId, DiskId, Nanos};
}
